// Timing-wheel event queue tests, beyond the basic ordering coverage in
// test_bpred.cpp: the far-future heap fallback, wheel wraparound across
// laps, near/far interleaving at the same cycle, scheduling during
// callbacks, and the path counters.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace pipette {
namespace {

TEST(TimingWheel, FarFutureEventsFallBackToHeap)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(EventQueue::WHEEL_SPAN + 100, [&] { order.push_back(2); });
    eq.schedule(10, [&] { order.push_back(1); });
    EXPECT_EQ(eq.nearScheduled(), 1u);
    EXPECT_EQ(eq.farScheduled(), 1u);

    eq.runUntil(EventQueue::WHEEL_SPAN + 99);
    EXPECT_EQ(order, (std::vector<int>{1}));
    eq.runUntil(EventQueue::WHEEL_SPAN + 100);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(eq.empty());
}

TEST(TimingWheel, NearAndFarInterleaveBySeqAtSameCycle)
{
    EventQueue eq;
    std::vector<int> order;
    const Cycle when = EventQueue::WHEEL_SPAN + 50;
    // First from beyond the wheel horizon (heap), ...
    eq.schedule(when, [&] { order.push_back(0); });
    // ... then advance until `when` is within the wheel and add bucket
    // events around it. FIFO order within the cycle must still hold.
    eq.runUntil(100);
    eq.schedule(when, [&] { order.push_back(1); });
    eq.schedule(when, [&] { order.push_back(2); });
    eq.runUntil(when);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TimingWheel, BucketsAreReusedAcrossLaps)
{
    EventQueue eq;
    int fired = 0;
    // Same bucket index on three successive laps of the wheel.
    for (int lap = 0; lap < 3; lap++) {
        Cycle when = 7 + static_cast<Cycle>(lap) * EventQueue::WHEEL_SPAN;
        // Advance to within the wheel horizon of `when` first.
        if (when > EventQueue::WHEEL_SPAN)
            eq.runUntil(when - EventQueue::WHEEL_SPAN + 1);
        eq.schedule(when, [&] { fired++; });
        eq.runUntil(when - 1);
        EXPECT_EQ(fired, lap) << "event must not fire a lap early";
        eq.runUntil(when);
        EXPECT_EQ(fired, lap + 1);
    }
    EXPECT_TRUE(eq.empty());
}

TEST(TimingWheel, RunUntilJumpsOverEmptyCyclesWithOnlyHeapEvents)
{
    EventQueue eq;
    std::vector<Cycle> firedAt;
    eq.schedule(5'000, [&] { firedAt.push_back(eq.now()); });
    eq.schedule(90'000, [&] { firedAt.push_back(eq.now()); });
    eq.runUntil(1'000'000);
    EXPECT_EQ(firedAt, (std::vector<Cycle>{5'000, 90'000}));
    EXPECT_EQ(eq.now(), 1'000'000u);
    EXPECT_TRUE(eq.empty());
}

TEST(TimingWheel, CallbackMayScheduleForTheSameCycle)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(1);
        eq.schedule(10, [&] { order.push_back(2); });
    });
    eq.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{1, 2}))
        << "same-cycle event scheduled during a callback must run "
           "within the same runUntil call";
}

TEST(TimingWheel, CallbackMayScheduleBeyondTheWheelHorizon)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(1, [&] {
        order.push_back(1);
        eq.schedule(1 + 4 * EventQueue::WHEEL_SPAN,
                    [&] { order.push_back(2); });
    });
    eq.runUntil(4 * EventQueue::WHEEL_SPAN);
    EXPECT_EQ(order, (std::vector<int>{1}));
    eq.runUntil(1 + 4 * EventQueue::WHEEL_SPAN);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimingWheel, StressOrderingMatchesScheduleOrderWithinCycle)
{
    EventQueue eq;
    // Deterministic LCG; no host randomness in tests.
    uint64_t state = 12345;
    auto next = [&] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };

    struct Fired
    {
        Cycle when;
        int seq;
        bool operator==(const Fired &o) const
        {
            return when == o.when && seq == o.seq;
        }
    };
    std::vector<Fired> fired;
    std::vector<Fired> expected;
    for (int i = 0; i < 500; i++) {
        // Mix of near (within the wheel) and far (heap) horizons.
        Cycle when = 1 + next() % (3 * EventQueue::WHEEL_SPAN);
        expected.push_back({when, i});
        eq.schedule(when, [&fired, &eq, i] {
            fired.push_back({eq.now(), i});
        });
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Fired &a, const Fired &b) {
                         return a.when < b.when;
                     });
    eq.runUntil(3 * EventQueue::WHEEL_SPAN + 1);
    EXPECT_EQ(fired, expected);
    EXPECT_TRUE(eq.empty());
}

TEST(TimingWheel, ClearDropsEverything)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(3, [&] { fired++; });
    eq.schedule(2 * EventQueue::WHEEL_SPAN, [&] { fired++; });
    EXPECT_EQ(eq.pending(), 2u);
    eq.clear();
    EXPECT_TRUE(eq.empty());
    eq.runUntil(3 * EventQueue::WHEEL_SPAN);
    EXPECT_EQ(fired, 0);
}

// --- nextDeadline / executed (cycle-elision oracle, DESIGN.md §13) ---

TEST(TimingWheel, NextDeadlineIsNeverWhenEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextDeadline(), EventQueue::NEVER);
    eq.runUntil(100);
    EXPECT_EQ(eq.nextDeadline(), EventQueue::NEVER);
}

TEST(TimingWheel, NextDeadlineFindsWheelAndHeapEvents)
{
    EventQueue eq;
    eq.schedule(7, [] {});
    EXPECT_EQ(eq.nextDeadline(), 7u);
    // A far (heap) event behind the wheel event changes nothing...
    eq.schedule(2 * EventQueue::WHEEL_SPAN, [] {});
    EXPECT_EQ(eq.nextDeadline(), 7u);
    // ...and becomes the deadline once the wheel event has fired.
    eq.runUntil(10);
    EXPECT_EQ(eq.nextDeadline(), 2 * EventQueue::WHEEL_SPAN);
}

TEST(TimingWheel, NextDeadlineReportsDueNowAsNow)
{
    // A straggler scheduled at == now_ means "not quiescent": the
    // deadline is now itself, never a future cycle.
    EventQueue eq;
    eq.runUntil(50);
    eq.schedule(50, [] {});
    EXPECT_EQ(eq.nextDeadline(), 50u);
}

TEST(TimingWheel, NextDeadlineHeapFrontCapsTheWheelScan)
{
    // After time advances, a once-far heap event can be nearer than
    // the first nonempty wheel bucket; the scan must not walk past it.
    EventQueue eq;
    eq.schedule(EventQueue::WHEEL_SPAN + 76, [] {}); // heap at t=1100
    eq.runUntil(EventQueue::WHEEL_SPAN + 26);        // now 26 before it
    eq.schedule(EventQueue::WHEEL_SPAN + 526, [] {}); // wheel, farther
    EXPECT_EQ(eq.nextDeadline(), EventQueue::WHEEL_SPAN + 76);
}

TEST(TimingWheel, ExecutedCountsFiredCallbacksOnBothPaths)
{
    EventQueue eq;
    eq.schedule(3, [] {});                           // wheel
    eq.schedule(2 * EventQueue::WHEEL_SPAN, [] {});  // heap
    EXPECT_EQ(eq.executed(), 0u);
    eq.runUntil(3);
    EXPECT_EQ(eq.executed(), 1u);
    eq.runUntil(3 * EventQueue::WHEEL_SPAN);
    EXPECT_EQ(eq.executed(), 2u);
}

} // namespace
} // namespace pipette
