// SpMM workload tests: merge-intersect with CV-delimited instances and
// skip_to_ctrl-driven producer redirection.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/interp.h"
#include "workloads/spmm.h"

namespace pipette {
namespace {

struct SpmmCase
{
    uint32_t n;
    double nnzA;
    double nnzB;
    Variant variant;
};

std::string
caseName(const testing::TestParamInfo<SpmmCase> &info)
{
    std::string s = "n" + std::to_string(info.param.n) + "a" +
                    std::to_string(static_cast<int>(info.param.nnzA)) + "b" +
                    std::to_string(static_cast<int>(info.param.nnzB)) + "_" +
                    variantName(info.param.variant);
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

class SpmmVariants : public testing::TestWithParam<SpmmCase>
{
};

TEST_P(SpmmVariants, MatchesReference)
{
    const SpmmCase &c = GetParam();
    SparseMatrix A = makeSparseMatrix(c.n, c.nnzA, 81);
    SparseMatrix B = makeSparseMatrix(c.n, c.nnzB, 82);
    SparseMatrix Bt = B.transpose();

    SystemConfig cfg;
    cfg.numCores = c.variant == Variant::Streaming ? 4 : 1;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 500'000'000;
    System sys(cfg);

    SpmmWorkload::Options opt;
    opt.numCols = 6;
    SpmmWorkload wl(&A, &Bt, opt);
    BuildContext ctx(&sys);
    wl.build(ctx, c.variant);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << sys.core(0).debugString();
    EXPECT_TRUE(wl.verify(sys));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SpmmVariants,
    testing::Values(
        SpmmCase{96, 6.0, 6.0, Variant::Serial},
        SpmmCase{96, 6.0, 6.0, Variant::DataParallel},
        SpmmCase{96, 6.0, 6.0, Variant::Pipette},
        SpmmCase{96, 6.0, 6.0, Variant::PipetteNoRa},
        SpmmCase{96, 6.0, 6.0, Variant::Streaming},
        // Asymmetric sizes exercise early-exhaustion (skip_to_ctrl on
        // both sides, Fig. 5).
        SpmmCase{128, 24.0, 3.0, Variant::Pipette},
        SpmmCase{128, 3.0, 24.0, Variant::Pipette},
        SpmmCase{128, 24.0, 3.0, Variant::Serial},
        SpmmCase{128, 24.0, 3.0, Variant::Streaming},
        SpmmCase{64, 12.0, 12.0, Variant::DataParallel}),
    caseName);

TEST(SpmmInterp, PipetteFunctionallyCorrect)
{
    SparseMatrix A = makeSparseMatrix(80, 10.0, 91);
    SparseMatrix B = makeSparseMatrix(80, 4.0, 92);
    SparseMatrix Bt = B.transpose();
    SystemConfig cfg;
    System sys(cfg);
    SpmmWorkload wl(&A, &Bt);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Pipette);
    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

TEST(SpmmInterp, SkipToCtrlFiresProducersOnTiming)
{
    // Long A rows vs tiny B columns: the merge stage must redirect the
    // rows producer through its enqueue handler at least once.
    SparseMatrix A = makeSparseMatrix(64, 30.0, 93);
    SparseMatrix B = makeSparseMatrix(64, 2.0, 94);
    SparseMatrix Bt = B.transpose();
    SystemConfig cfg;
    System sys(cfg);
    SpmmWorkload wl(&A, &Bt);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Pipette);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished);
    EXPECT_TRUE(wl.verify(sys));
    EXPECT_GT(sys.core(0).stats().skipDiscards, 0u);
    EXPECT_GT(sys.core(0).stats().enqTraps, 0u);
}

} // namespace
} // namespace pipette
