// Unit tests for the cache tag arrays and the timing memory hierarchy.

#include <gtest/gtest.h>

#include "mem/hierarchy.h"

namespace pipette {
namespace {

MemConfig
smallConfig()
{
    MemConfig m;
    m.l1d = {4 * 1024, 4, 4, 8};
    m.l2 = {16 * 1024, 8, 12, 16};
    m.l3 = {64 * 1024, 16, 38, 32};
    m.prefetcherEnabled = false;
    return m;
}

TEST(CacheArray, HitAfterInsert)
{
    CacheConfig cfg{4 * 1024, 4, 4, 8};
    CacheArray c(cfg, 64, "t");
    EXPECT_EQ(c.lookup(100), nullptr);
    c.insert(100, false, false);
    EXPECT_NE(c.lookup(100), nullptr);
}

TEST(CacheArray, LruEviction)
{
    // 4-way: fill one set with 5 lines; the first goes.
    CacheConfig cfg{4 * 1024, 4, 4, 8};
    CacheArray c(cfg, 64, "t");
    uint32_t sets = c.numSets();
    for (uint64_t i = 0; i < 5; i++)
        c.insert(i * sets, false, false); // all map to set 0
    EXPECT_EQ(c.lookup(0), nullptr);
    for (uint64_t i = 1; i < 5; i++)
        EXPECT_NE(c.lookup(i * sets), nullptr);
}

TEST(CacheArray, LruTouchProtects)
{
    CacheConfig cfg{4 * 1024, 4, 4, 8};
    CacheArray c(cfg, 64, "t");
    uint32_t sets = c.numSets();
    for (uint64_t i = 0; i < 4; i++)
        c.insert(i * sets, false, false);
    c.lookup(0); // touch line 0 -> MRU
    c.insert(4ull * sets, false, false);
    EXPECT_NE(c.lookup(0), nullptr);      // protected
    EXPECT_EQ(c.lookup(1ull * sets), nullptr); // victim was line 1
}

TEST(CacheArray, DirtyEvictionReported)
{
    CacheConfig cfg{4 * 1024, 4, 4, 8};
    CacheArray c(cfg, 64, "t");
    uint32_t sets = c.numSets();
    c.insert(0, true, false);
    for (uint64_t i = 1; i < 4; i++)
        c.insert(i * sets, false, false);
    auto res = c.insert(4ull * sets, false, false);
    EXPECT_TRUE(res.evictedDirty);
    EXPECT_EQ(res.victimLineAddr, 0u);
}

TEST(CacheArray, Invalidate)
{
    CacheConfig cfg{4 * 1024, 4, 4, 8};
    CacheArray c(cfg, 64, "t");
    c.insert(7, false, false);
    EXPECT_TRUE(c.invalidate(7));
    EXPECT_EQ(c.lookup(7), nullptr);
    EXPECT_FALSE(c.invalidate(7));
}

TEST(Hierarchy, L1HitLatency)
{
    EventQueue eq;
    MemoryHierarchy h(smallConfig(), 1, &eq);
    Cycle done1 = h.access(0, 0x1000, false, 0, nullptr);
    EXPECT_GT(done1, smallConfig().l1d.latency); // first access misses
    Cycle done2 = h.access(0, 0x1008, false, done1, nullptr); // same line
    EXPECT_EQ(done2, done1 + smallConfig().l1d.latency);
    EXPECT_EQ(h.l1Stats(0).misses, 1u);
    EXPECT_EQ(h.l1Stats(0).accesses, 2u);
}

TEST(Hierarchy, MissGoesToDram)
{
    MemConfig m = smallConfig();
    EventQueue eq;
    MemoryHierarchy h(m, 1, &eq);
    Cycle done = h.access(0, 0x1000, false, 0, nullptr);
    EXPECT_GE(done, m.l3.latency + m.dramLatency);
    EXPECT_EQ(h.memStats().dramReads, 1u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemConfig m = smallConfig();
    EventQueue eq;
    MemoryHierarchy h(m, 1, &eq);
    // Fill enough lines to evict 0x0 from the 4KB L1 but not 16KB L2.
    Cycle t = 0;
    t = h.access(0, 0, false, t, nullptr);
    for (Addr a = 4096; a < 4096 + 8 * 1024; a += 64)
        t = h.access(0, a, false, t, nullptr);
    uint64_t missesBefore = h.l2Stats(0).misses;
    Cycle done = h.access(0, 0, false, t, nullptr);
    EXPECT_EQ(h.l2Stats(0).misses, missesBefore); // L2 hit, no new miss
    EXPECT_LT(done - t, m.l3.latency);            // faster than L3
}

TEST(Hierarchy, CallbackScheduledAtCompletion)
{
    EventQueue eq;
    MemoryHierarchy h(smallConfig(), 1, &eq);
    bool fired = false;
    Cycle done = h.access(0, 0x5000, false, 0, [&] { fired = true; });
    eq.runUntil(done - 1);
    EXPECT_FALSE(fired);
    eq.runUntil(done);
    EXPECT_TRUE(fired);
}

TEST(Hierarchy, MshrsLimitParallelMisses)
{
    MemConfig m = smallConfig();
    m.l1d.mshrs = 2;
    EventQueue eq;
    MemoryHierarchy h(m, 1, &eq);
    // Three misses to distinct lines at the same cycle: the third must
    // wait for an MSHR.
    Cycle d1 = h.access(0, 0x10000, false, 0, nullptr);
    Cycle d2 = h.access(0, 0x20000, false, 0, nullptr);
    Cycle d3 = h.access(0, 0x30000, false, 0, nullptr);
    EXPECT_GE(d3, std::min(d1, d2));
    EXPECT_GT(h.l1Stats(0).misses, 0u);
    EXPECT_GT(d3, d1); // serialized behind an earlier completion
}

TEST(Hierarchy, SameLineMissesCoalesce)
{
    EventQueue eq;
    MemoryHierarchy h(smallConfig(), 1, &eq);
    Cycle d1 = h.access(0, 0x10000, false, 0, nullptr);
    Cycle d2 = h.access(0, 0x10008, false, 1, nullptr);
    EXPECT_EQ(d2, d1); // rides the same in-flight miss
    EXPECT_EQ(h.memStats().dramReads, 1u);
}

TEST(Hierarchy, DramBandwidthQueues)
{
    MemConfig m = smallConfig();
    m.dramChannels = 1;
    m.dramCyclesPerReq = 10;
    EventQueue eq;
    MemoryHierarchy h(m, 1, &eq);
    Cycle d1 = h.access(0, 0x100000, false, 0, nullptr);
    Cycle d2 = h.access(0, 0x200000, false, 0, nullptr);
    EXPECT_EQ(d2, d1 + 10); // second request queued behind the first
    EXPECT_GT(h.memStats().dramQueueCycles, 0u);
}

TEST(Hierarchy, WriteInvalidatesRemoteCopies)
{
    MemConfig m = smallConfig();
    EventQueue eq;
    MemoryHierarchy h(m, 2, &eq);
    Cycle t = h.access(0, 0x1000, false, 0, nullptr);  // core 0 reads
    t = h.access(1, 0x1000, false, t, nullptr);        // core 1 reads
    EXPECT_EQ(h.l1Stats(1).misses, 1u);
    t = h.access(0, 0x1000, true, t, nullptr);         // core 0 writes
    EXPECT_GE(h.l1Stats(1).invalidations, 1u);
    // Core 1's next read must miss again.
    uint64_t missesBefore = h.l1Stats(1).misses;
    h.access(1, 0x1000, false, t + 100, nullptr);
    EXPECT_EQ(h.l1Stats(1).misses, missesBefore + 1);
}

TEST(Hierarchy, StreamPrefetcherHidesSequentialMisses)
{
    MemConfig m = smallConfig();
    m.prefetcherEnabled = true;
    EventQueue eq;
    MemoryHierarchy h(m, 1, &eq);
    // Walk 64 sequential lines with ample spacing: after the stream is
    // detected, demand accesses should hit prefetched lines.
    Cycle t = 0;
    for (Addr a = 0; a < 64 * 64; a += 64) {
        h.access(0, 0x100000 + a, false, t, nullptr);
        t += 400;
    }
    EXPECT_GT(h.l1Stats(0).prefetches, 0u);
    EXPECT_GT(h.l1Stats(0).prefetchHits, 10u);
    // Most of the walk hits thanks to prefetching.
    EXPECT_LT(h.l1Stats(0).misses, 20u);
}

TEST(Hierarchy, StatsDumpContainsKeys)
{
    EventQueue eq;
    MemoryHierarchy h(smallConfig(), 1, &eq);
    h.access(0, 0x1000, false, 0, nullptr);
    std::map<std::string, double> out;
    h.dumpStats(out);
    EXPECT_TRUE(out.count("core0.l1d.accesses"));
    EXPECT_TRUE(out.count("l3.misses"));
    EXPECT_TRUE(out.count("mem.dramReads"));
}

} // namespace
} // namespace pipette
