// Integration tests of the cycle-level OOO SMT core: scalar semantics,
// branches and recovery, loads/stores/forwarding, atomics, and the full
// Pipette machinery (queues, CV traps, skiptc, RAs, connectors), plus
// differential checks against the golden-model interpreter.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/assembler.h"
#include "isa/interp.h"

namespace pipette {
namespace {

SystemConfig
smallSys(uint32_t cores = 1)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.watchdogCycles = 100'000;
    cfg.maxCycles = 20'000'000;
    return cfg;
}

TEST(Core, ArithmeticLoop)
{
    Program p("sum");
    Asm a(&p);
    auto loop = a.label();
    a.li(R::r1, 0);
    a.li(R::r2, 1);
    a.bind(loop);
    a.add(R::r1, R::r1, R::r2);
    a.addi(R::r2, R::r2, 1);
    a.blti(R::r2, 101, loop);
    a.halt();
    a.finalize();

    System sys(smallSys());
    MachineSpec spec;
    spec.addThread(0, 0, &p);
    sys.configure(spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished);
    EXPECT_EQ(sys.core(0).readArchReg(0, 1), 5050u);
    EXPECT_EQ(sys.core(0).stats().committedInstrs, 2u + 3 * 100 + 1);
}

TEST(Core, StoreLoadForwarding)
{
    Program p("fwd");
    Asm a(&p);
    a.li(R::r1, 0x20000);
    a.li(R::r2, 123);
    a.sd(R::r2, R::r1, 0);
    a.ld(R::r3, R::r1, 0); // must forward from the uncommitted store
    a.addi(R::r3, R::r3, 1);
    a.halt();
    a.finalize();

    System sys(smallSys());
    MachineSpec spec;
    spec.addThread(0, 0, &p);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    EXPECT_EQ(sys.core(0).readArchReg(0, 3), 124u);
    EXPECT_EQ(sys.memory().read(0x20000, 8), 123u);
}

TEST(Core, PartialOverlapStoreLoad)
{
    Program p("partial");
    Asm a(&p);
    a.li(R::r1, 0x20000);
    a.li(R::r2, 0x1122334455667788ull);
    a.sd(R::r2, R::r1, 0);
    a.lw(R::r3, R::r1, 4); // partial overlap: waits for the store
    a.halt();
    a.finalize();

    System sys(smallSys());
    MachineSpec spec;
    spec.addThread(0, 0, &p);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    EXPECT_EQ(sys.core(0).readArchReg(0, 3), 0x11223344u);
}

TEST(Core, DataDependentBranchesRecover)
{
    // Alternating hard-to-predict branches based on a xorshift PRNG;
    // result checked against the interpreter.
    Program p("branches");
    Asm a(&p);
    auto loop = a.label();
    auto odd = a.label();
    auto next = a.label();
    a.li(R::r1, 12345); // prng state
    a.li(R::r2, 0);     // sum
    a.li(R::r3, 200);   // iterations
    a.bind(loop);
    // xorshift step
    a.slli(R::r4, R::r1, 13);
    a.xor_(R::r1, R::r1, R::r4);
    a.srli(R::r4, R::r1, 7);
    a.xor_(R::r1, R::r1, R::r4);
    a.andi(R::r5, R::r1, 1);
    a.bnei(R::r5, 0, odd);
    a.addi(R::r2, R::r2, 3);
    a.jmp(next);
    a.bind(odd);
    a.addi(R::r2, R::r2, 7);
    a.bind(next);
    a.addi(R::r3, R::r3, -1);
    a.bnei(R::r3, 0, loop);
    a.halt();
    a.finalize();

    MachineSpec spec;
    spec.addThread(0, 0, &p);

    SimMemory imem;
    Interp in(spec, &imem);
    ASSERT_EQ(in.run().status, Interp::Status::Done);

    System sys(smallSys());
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    EXPECT_EQ(sys.core(0).readArchReg(0, 2), in.reg(0, 2));
    EXPECT_GT(sys.core(0).stats().mispredicts, 10u); // genuinely hard
}

TEST(Core, JalJrRoundTrip)
{
    Program p("call");
    Asm a(&p);
    auto fn = a.label("fn");
    auto done = a.label("done");
    a.li(R::r1, 1);
    a.jal(R::r10, fn);
    a.li(R::r2, 3);
    a.jmp(done);
    a.bind(fn);
    a.addi(R::r1, R::r1, 10);
    a.jr(R::r10);
    a.bind(done);
    a.halt();
    a.finalize();

    System sys(smallSys());
    MachineSpec spec;
    spec.addThread(0, 0, &p);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    EXPECT_EQ(sys.core(0).readArchReg(0, 1), 11u);
    EXPECT_EQ(sys.core(0).readArchReg(0, 2), 3u);
}

TEST(Core, IndirectLoadChain)
{
    // r3 = C[B[A[i]]] summed over i -- the irregular pattern the paper
    // targets. Checked against a host-computed expectation.
    SimMemory ref;
    const uint64_t n = 64;
    Addr A = 0x100000, B = 0x120000, C = 0x140000;

    Program p("chain");
    Asm a(&p);
    auto loop = a.label();
    a.li(R::r1, 0); // i
    a.li(R::r2, 0); // sum
    a.li(R::r4, A);
    a.li(R::r5, B);
    a.li(R::r6, C);
    a.bind(loop);
    a.slli(R::r7, R::r1, 3);
    a.add(R::r7, R::r4, R::r7);
    a.ld(R::r8, R::r7, 0); // A[i]
    a.slli(R::r8, R::r8, 3);
    a.add(R::r8, R::r5, R::r8);
    a.ld(R::r9, R::r8, 0); // B[A[i]]
    a.slli(R::r9, R::r9, 3);
    a.add(R::r9, R::r6, R::r9);
    a.ld(R::r10, R::r9, 0); // C[B[A[i]]]
    a.add(R::r2, R::r2, R::r10);
    a.addi(R::r1, R::r1, 1);
    a.blti(R::r1, static_cast<int64_t>(n), loop);
    a.halt();
    a.finalize();

    System sys(smallSys());
    uint64_t expect = 0;
    {
        // Pseudorandom permutation-ish contents.
        for (uint64_t i = 0; i < n; i++)
            sys.memory().write(A + 8 * i, 8, (i * 17 + 3) % n);
        for (uint64_t i = 0; i < n; i++)
            sys.memory().write(B + 8 * i, 8, (i * 29 + 11) % n);
        for (uint64_t i = 0; i < n; i++)
            sys.memory().write(C + 8 * i, 8, i * 1000);
        for (uint64_t i = 0; i < n; i++)
            expect += ((((i * 17 + 3) % n) * 29 + 11) % n) * 1000;
    }
    MachineSpec spec;
    spec.addThread(0, 0, &p);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    EXPECT_EQ(sys.core(0).readArchReg(0, 2), expect);
}

TEST(Core, AtomicsAcrossSmtThreads)
{
    Program p("incr");
    Asm a(&p);
    auto loop = a.label();
    a.li(R::r1, 0x30000);
    a.li(R::r2, 500);
    a.li(R::r3, 1);
    a.bind(loop);
    a.amoadd(R::zero, R::r1, R::r3);
    a.addi(R::r2, R::r2, -1);
    a.bnei(R::r2, 0, loop);
    a.halt();
    a.finalize();

    System sys(smallSys());
    MachineSpec spec;
    for (ThreadId t = 0; t < 4; t++)
        spec.addThread(0, t, &p);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    EXPECT_EQ(sys.memory().read(0x30000, 8), 2000u);
}

// ------------------------------------------------------- Pipette tests

constexpr Reg QOUT = R::r11;
constexpr Reg QIN = R::r12;

TEST(CorePipette, ProducerConsumerSum)
{
    Program prod("prod");
    {
        Asm a(&prod);
        auto loop = a.label();
        a.li(R::r1, 1);
        a.bind(loop);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 1001, loop);
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, 0);
        a.bind(loop);
        a.add(R::r1, R::r1, QIN);
        a.jmp(loop);
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }

    System sys(smallSys());
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons);
    tc.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    sys.configure(spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << sys.core(0).debugString();
    EXPECT_EQ(sys.core(0).readArchReg(1, 1), 500500u);
    EXPECT_GT(sys.core(0).stats().enqueues, 1000u);
    EXPECT_GT(sys.core(0).stats().dequeues, 1000u);
    EXPECT_EQ(sys.core(0).stats().cvTraps, 1u);
}

TEST(CorePipette, PeekThenDequeue)
{
    Program prod("prod");
    {
        Asm a(&prod);
        a.li(R::r1, 42);
        a.mov(QOUT, R::r1);
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto hdl = a.label("h");
        a.peek(R::r1, QIN);
        a.peek(R::r2, QIN);
        a.mov(R::r3, QIN);
        a.mov(R::r4, QIN); // CV -> handler
        a.halt();
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }
    System sys(smallSys());
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons);
    tc.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    EXPECT_EQ(sys.core(0).readArchReg(1, 1), 42u);
    EXPECT_EQ(sys.core(0).readArchReg(1, 2), 42u);
    EXPECT_EQ(sys.core(0).readArchReg(1, 3), 42u);
    EXPECT_EQ(sys.core(0).readArchReg(1, 4), 0u);
}

TEST(CorePipette, CvPayloadAndResume)
{
    // Producer: values 1..10 then CV(5), then 11..20 then CV(99).
    Program prod("prod");
    {
        Asm a(&prod);
        auto l1 = a.label();
        auto l2 = a.label();
        a.li(R::r1, 1);
        a.bind(l1);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 11, l1);
        a.li(R::r2, 5);
        a.enqc(QOUT, R::r2);
        a.bind(l2);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 21, l2);
        a.li(R::r2, 99);
        a.enqc(QOUT, R::r2);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto loop = a.label();
        auto hdl = a.label("h");
        auto end = a.label("e");
        a.li(R::r1, 0); // data sum
        a.li(R::r2, 0); // tag sum
        a.bind(loop);
        a.add(R::r1, R::r1, QIN);
        a.jmp(loop);
        a.bind(hdl);
        a.add(R::r2, R::r2, R::cvval);
        a.beqi(R::cvval, 99, end);
        a.jr(R::cvret);
        a.bind(end);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }
    System sys(smallSys());
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 2, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons);
    tc.queueMaps.push_back({QIN.idx, 2, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished) << sys.core(0).debugString();
    EXPECT_EQ(sys.core(0).readArchReg(1, 1), 210u); // 1+..+20
    EXPECT_EQ(sys.core(0).readArchReg(1, 2), 104u); // 5+99
    EXPECT_EQ(sys.core(0).stats().cvTraps, 2u);
}

TEST(CorePipette, SkipToCtrlWithEnqueueTrap)
{
    // Same scenario as the interpreter test: endless producer rows,
    // consumer skips, producer redirected through its enqueue handler.
    Program prod("prod");
    Addr enqHandler;
    {
        Asm a(&prod);
        auto loop = a.label();
        auto hdl = a.label("eh");
        auto done = a.label("done");
        a.li(R::r1, 0);
        a.li(R::r2, 0);
        a.bind(loop);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.jmp(loop);
        a.bind(hdl);
        a.addi(R::r2, R::r2, 1);
        a.enqc(QOUT, R::r2);
        a.beqi(R::r2, 2, done);
        a.li(R::r1, 1000);
        a.jmp(loop);
        a.bind(done);
        a.halt();
        a.finalize();
        enqHandler = prod.labels().at("eh");
    }
    Program cons("cons");
    {
        Asm a(&cons);
        a.mov(R::r1, QIN);
        a.skiptc(R::r2, QIN);
        a.mov(R::r3, QIN);
        a.skiptc(R::r4, QIN);
        a.halt();
        a.finalize();
    }
    System sys(smallSys());
    MachineSpec spec;
    auto &tp = spec.addThread(0, 0, &prod);
    tp.queueMaps.push_back({QOUT.idx, 0, QueueDir::Out});
    tp.enqHandler = static_cast<int64_t>(enqHandler);
    spec.addThread(0, 1, &cons).queueMaps.push_back(
        {QIN.idx, 0, QueueDir::In});
    spec.queueCaps.push_back({0, 0, 8});
    sys.configure(spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << sys.core(0).debugString();
    EXPECT_EQ(sys.core(0).readArchReg(1, 1), 0u);
    EXPECT_EQ(sys.core(0).readArchReg(1, 2), 1u);
    EXPECT_EQ(sys.core(0).readArchReg(1, 3), 1000u);
    EXPECT_EQ(sys.core(0).readArchReg(1, 4), 2u);
    EXPECT_GE(sys.core(0).stats().enqTraps, 1u);
    EXPECT_GT(sys.core(0).stats().skipDiscards, 0u);
}

TEST(CorePipette, RaIndirectPipeline)
{
    SimMemory *mem;
    Addr arr = 0x80000;

    Program prod("prod");
    {
        Asm a(&prod);
        auto loop = a.label();
        a.li(R::r1, 0);
        a.bind(loop);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 256, loop);
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, 0);
        a.bind(loop);
        a.add(R::r1, R::r1, QIN);
        a.jmp(loop);
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }
    System sys(smallSys());
    mem = &sys.memory();
    for (uint64_t i = 0; i < 256; i++)
        mem->write(arr + 8 * i, 8, i * 3);

    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons);
    tc.queueMaps.push_back({QIN.idx, 1, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    spec.ras.push_back({0, 0, 1, arr, 8, RaMode::Indirect});
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished) << sys.core(0).debugString();
    uint64_t expect = 0;
    for (uint64_t i = 0; i < 256; i++)
        expect += i * 3;
    EXPECT_EQ(sys.core(0).readArchReg(1, 1), expect);
    EXPECT_GT(sys.core(0).stats().raAccesses, 200u);
}

TEST(CorePipette, RaScanPipeline)
{
    Addr arr = 0x90000;
    Program prod("prod");
    {
        // Enqueue (i*10, i*10 + i) pairs for i in 1..8.
        Asm a(&prod);
        auto loop = a.label();
        a.li(R::r1, 1);
        a.bind(loop);
        a.li(R::r2, 10);
        a.mul(R::r3, R::r1, R::r2);
        a.mov(QOUT, R::r3);          // start = i*10
        a.add(R::r3, R::r3, R::r1);
        a.mov(QOUT, R::r3);          // end = i*10 + i
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 9, loop);
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, 0);
        a.li(R::r2, 0);
        a.bind(loop);
        a.add(R::r1, R::r1, QIN);
        a.addi(R::r2, R::r2, 1);
        a.jmp(loop);
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }
    System sys(smallSys());
    for (uint64_t i = 0; i < 128; i++)
        sys.memory().write(arr + 4 * i, 4, 7 * i);

    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons);
    tc.queueMaps.push_back({QIN.idx, 1, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    spec.ras.push_back({0, 0, 1, arr, 4, RaMode::Scan});
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished) << sys.core(0).debugString();
    uint64_t sum = 0, count = 0;
    for (uint64_t i = 1; i < 9; i++) {
        for (uint64_t j = i * 10; j < i * 10 + i; j++) {
            sum += 7 * j;
            count++;
        }
    }
    EXPECT_EQ(sys.core(0).readArchReg(1, 1), sum);
    EXPECT_EQ(sys.core(0).readArchReg(1, 2), count);
}

TEST(CorePipette, ConnectorAcrossCores)
{
    Program prod("prod");
    {
        Asm a(&prod);
        auto loop = a.label();
        a.li(R::r1, 1);
        a.bind(loop);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 501, loop);
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, 0);
        a.bind(loop);
        a.add(R::r1, R::r1, QIN);
        a.jmp(loop);
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }
    System sys(smallSys(2));
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(1, 0, &cons);
    tc.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    spec.connectors.push_back({0, 0, 1, 0});
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished) << sys.core(0).debugString()
                                    << sys.core(1).debugString();
    EXPECT_EQ(sys.core(1).readArchReg(0, 1), 500u * 501 / 2);
    EXPECT_GT(sys.core(0).stats().connectorTransfers, 500u);
}

TEST(CorePipette, QueueRegisterBudgetIsRespected)
{
    // Queue capacity 64 exceeds the register budget; the producer must
    // stall on the budget rather than exhaust the PRF.
    Program prod("prod");
    {
        Asm a(&prod);
        auto loop = a.label();
        a.li(R::r1, 0);
        a.bind(loop);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 200, loop);
        a.halt();
        a.finalize();
    }
    Program slow("slow");
    Addr handler;
    {
        // Consumer dequeues with long dependency chains in between.
        Asm a(&slow);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, 0);
        a.bind(loop);
        a.add(R::r1, R::r1, QIN);
        a.mul(R::r2, R::r1, R::r1);
        a.mul(R::r2, R::r2, R::r2);
        a.jmp(loop);
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = slow.labels().at("h");
    }
    SystemConfig cfg = smallSys();
    cfg.core.maxQueueRegs = 16; // tight budget
    System sys(cfg);
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &slow);
    tc.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    spec.queueCaps.push_back({0, 0, 64});
    sys.configure(spec);
    // Producer halts after 200 enqueues; consumer never sees a CV, so the
    // consumer eventually deadlocks -- but the producer must finish,
    // proving enqueues stall on the budget instead of crashing.
    auto res = sys.run();
    EXPECT_TRUE(res.deadlock); // consumer waits forever (no CV sent)
    EXPECT_LE(sys.core(0).qrm().regsInUse(), 16u);
}

TEST(CorePipette, TimingMatchesInterpreterOnPipeline)
{
    // A 3-stage pipeline computing sum(A[B[i]]) with CV termination,
    // run through both models; architectural results must agree.
    const uint64_t n = 200;
    Addr A = 0x100000, B = 0x200000, out = 0x300000;

    Program stage0("s0"); // stream indices i, enqueue B[i]
    {
        Asm a(&stage0);
        auto loop = a.label();
        a.li(R::r1, 0);
        a.li(R::r2, B);
        a.bind(loop);
        a.slli(R::r3, R::r1, 3);
        a.add(R::r3, R::r2, R::r3);
        a.ld(QOUT, R::r3, 0); // load directly enqueues (Fig. 3(d))
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, static_cast<int64_t>(n), loop);
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    Program stage1("s1"); // dequeue idx, enqueue A[idx]
    Addr h1;
    {
        Asm a(&stage1);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, A);
        a.bind(loop);
        a.slli(R::r2, QIN, 3);
        a.add(R::r2, R::r1, R::r2);
        a.ld(QOUT, R::r2, 0);
        a.jmp(loop);
        a.bind(hdl);
        a.enqc(QOUT, R::cvval);
        a.halt();
        a.finalize();
        h1 = stage1.labels().at("h");
    }
    Program stage2("s2"); // accumulate
    Addr h2;
    {
        Asm a(&stage2);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, 0);
        a.bind(loop);
        a.add(R::r1, R::r1, QIN);
        a.jmp(loop);
        a.bind(hdl);
        a.li(R::r2, out);
        a.sd(R::r1, R::r2, 0);
        a.halt();
        a.finalize();
        h2 = stage2.labels().at("h");
    }

    auto buildSpec = [&](MachineSpec &spec) {
        auto &t0 = spec.addThread(0, 0, &stage0);
        t0.queueMaps.push_back({QOUT.idx, 0, QueueDir::Out});
        auto &t1 = spec.addThread(0, 1, &stage1);
        t1.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
        t1.queueMaps.push_back({QOUT.idx, 1, QueueDir::Out});
        t1.deqHandler = static_cast<int64_t>(h1);
        auto &t2 = spec.addThread(0, 2, &stage2);
        t2.queueMaps.push_back({QIN.idx, 1, QueueDir::In});
        t2.deqHandler = static_cast<int64_t>(h2);
    };
    auto fillMem = [&](SimMemory &m) {
        for (uint64_t i = 0; i < n; i++) {
            m.write(B + 8 * i, 8, (i * 37 + 5) % n);
            m.write(A + 8 * i, 8, i * i);
        }
    };

    MachineSpec spec;
    buildSpec(spec);

    SimMemory imem;
    fillMem(imem);
    Interp in(spec, &imem);
    ASSERT_EQ(in.run().status, Interp::Status::Done);

    System sys(smallSys());
    fillMem(sys.memory());
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished) << sys.core(0).debugString();

    EXPECT_EQ(sys.memory().read(out, 8), imem.read(out, 8));
    EXPECT_NE(sys.memory().read(out, 8), 0u);
}

TEST(CorePipette, DeadlockDetectedByWatchdog)
{
    Program cons("cons");
    {
        Asm a(&cons);
        a.mov(R::r1, QIN);
        a.halt();
        a.finalize();
    }
    SystemConfig cfg = smallSys();
    cfg.watchdogCycles = 5'000;
    System sys(cfg);
    MachineSpec spec;
    spec.addThread(0, 0, &cons).queueMaps.push_back(
        {QIN.idx, 0, QueueDir::In});
    sys.configure(spec);
    auto res = sys.run();
    EXPECT_FALSE(res.finished);
    EXPECT_TRUE(res.deadlock);
}

} // namespace
} // namespace pipette
