// Bit-identity tests for stall-aware cycle elision (DESIGN.md §13).
// The quiescence oracle lets the run loop jump over provably dead
// cycles; these tests prove the jump is invisible: every simulated
// statistic is bit-identical with the skip on and off, across all 12
// golden workload rows, with observability attached, in sampled mode,
// and under the multicore epoch scheduler at several --core-jobs
// values. A synthetic all-stall program then checks the oracle really
// elides (most of a DRAM-bound pointer chase) and credits the same
// CPI buckets the single-stepped run accumulates.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "isa/assembler.h"
#include "sample/sampler.h"
#include "workloads/bfs.h"
#include "workloads/cc.h"
#include "workloads/graph.h"
#include "workloads/matrix.h"
#include "workloads/prd.h"
#include "workloads/radii.h"
#include "workloads/silo.h"
#include "workloads/spmm.h"

namespace pipette {
namespace {

/**
 * Drop the elision totals from a dump: they record how the run was
 * executed on the host (how many cycles were fast-forwarded), not what
 * it simulated, and are the only keys allowed to differ between a
 * skip-on and a skip-off run of the same configuration.
 */
std::map<std::string, double>
stripSkipKeys(const std::map<std::string, double> &m)
{
    std::map<std::string, double> out;
    for (const auto &[k, v] : m) {
        if (k.find("skippedCycles") != std::string::npos ||
            k.find("skipWindows") != std::string::npos)
            continue;
        out.emplace(k, v);
    }
    return out;
}

struct SkipCase
{
    const char *workload;
    Variant variant;
};

// The 12 golden rows of test_determinism.cpp.
const SkipCase kCases[] = {
    {"bfs", Variant::Serial},    {"bfs", Variant::Pipette},
    {"cc", Variant::Serial},     {"cc", Variant::Pipette},
    {"radii", Variant::Serial},  {"radii", Variant::Pipette},
    {"prd", Variant::Serial},    {"prd", Variant::Pipette},
    {"spmm", Variant::Serial},   {"spmm", Variant::Pipette},
    {"silo", Variant::Serial},   {"silo", Variant::Pipette},
};

std::string
caseName(const testing::TestParamInfo<SkipCase> &info)
{
    return std::string(info.param.workload) + "_" +
           variantName(info.param.variant);
}

std::unique_ptr<WorkloadBase>
makeWorkload(const std::string &name, Graph *g, SparseMatrix *A,
             SparseMatrix *Bt)
{
    if (name == "bfs")
        return std::make_unique<BfsWorkload>(g);
    if (name == "cc")
        return std::make_unique<CcWorkload>(g);
    if (name == "radii")
        return std::make_unique<RadiiWorkload>(g);
    if (name == "prd")
        return std::make_unique<PrdWorkload>(g);
    if (name == "spmm") {
        SpmmWorkload::Options o;
        o.numCols = 6;
        return std::make_unique<SpmmWorkload>(A, Bt, o);
    }
    SiloWorkload::Options o;
    o.numKeys = 2000;
    o.numQueries = 400;
    return std::make_unique<SiloWorkload>(o);
}

struct RunOutcome
{
    System::RunResult res;
    CoreStats agg;
    std::map<std::string, double> stats;
    bool verified = false;
};

/** Run one golden case (same inputs as test_determinism.cpp) with the
 *  elision toggle and optional observability set explicitly. */
RunOutcome
runCase(const std::string &workload, Variant v, bool elision,
        bool obsOn = false)
{
    Graph g = makeGridGraph(40, 40, 11);
    SparseMatrix A = makeSparseMatrix(96, 8, 81);
    SparseMatrix B = makeSparseMatrix(96, 8, 82);
    SparseMatrix Bt = B.transpose();

    SystemConfig cfg;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 500'000'000;
    cfg.cycleElision = elision;
    if (obsOn) {
        cfg.observability.sampleInterval = 2'000;
        cfg.observability.histograms = true;
    }
    System sys(cfg);
    auto wl = makeWorkload(workload, &g, &A, &Bt);
    BuildContext ctx(&sys);
    wl->build(ctx, v);
    sys.configure(ctx.spec);

    RunOutcome out;
    out.res = sys.run();
    out.agg = sys.aggregateCoreStats();
    out.stats = sys.dumpStats();
    out.verified = wl->verify(sys);
    return out;
}

class SkipIdentity : public testing::TestWithParam<SkipCase>
{
};

// Elision on vs off: every simulated statistic in the full dump must
// match bit for bit (only the elision totals themselves may differ).
TEST_P(SkipIdentity, FullDumpBitIdentical)
{
    const SkipCase &c = GetParam();
    RunOutcome on = runCase(c.workload, c.variant, true);
    RunOutcome off = runCase(c.workload, c.variant, false);
    ASSERT_TRUE(on.res.finished);
    ASSERT_TRUE(off.res.finished);
    EXPECT_TRUE(on.verified);
    EXPECT_EQ(on.res.cycles, off.res.cycles);
    EXPECT_EQ(on.res.instrs, off.res.instrs);
    EXPECT_EQ(stripSkipKeys(on.stats), stripSkipKeys(off.stats));

    // The skip-off run must not elide anything.
    EXPECT_EQ(off.agg.skippedCycles, 0u);
    EXPECT_EQ(off.agg.skipWindows, 0u);
}

// Same matrix with the observability layer attached: samples and
// histograms clamp and fragment the skips but every simulated row --
// including every obs.* row -- stays identical.
TEST_P(SkipIdentity, FullDumpBitIdenticalWithObservability)
{
    const SkipCase &c = GetParam();
    RunOutcome on = runCase(c.workload, c.variant, true, true);
    RunOutcome off = runCase(c.workload, c.variant, false, true);
    ASSERT_TRUE(on.res.finished);
    ASSERT_TRUE(off.res.finished);
    EXPECT_EQ(on.res.cycles, off.res.cycles);
    EXPECT_EQ(stripSkipKeys(on.stats), stripSkipKeys(off.stats));
}

INSTANTIATE_TEST_SUITE_P(AllGoldenRows, SkipIdentity,
                         testing::ValuesIn(kCases), caseName);

// Sampled mode: detailed windows inherit the toggle through the window
// config copy; the sampled report (windows, extrapolations, exact
// counters) must be bit-identical with the skip on and off.
TEST(SkipSampled, SampledReportBitIdentical)
{
    Graph g = makeRmatGraph(512, 2048, 9);
    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    cfg.maxCycles = 100'000'000;
    cfg.sampling.period = 4'000;
    cfg.sampling.window = 1'500;
    cfg.sampling.warmup = 500;

    cfg.cycleElision = true;
    BfsWorkload wlOn(&g);
    sample::SampleReport on =
        sample::runSampled(cfg, wlOn, Variant::Pipette, 1);

    cfg.cycleElision = false;
    BfsWorkload wlOff(&g);
    sample::SampleReport off =
        sample::runSampled(cfg, wlOff, Variant::Pipette, 1);

    ASSERT_TRUE(on.ok);
    ASSERT_TRUE(off.ok);
    EXPECT_TRUE(on.verified);
    EXPECT_EQ(on.windows, off.windows);
    EXPECT_EQ(on.extrapCycles, off.extrapCycles);
    EXPECT_EQ(stripSkipKeys(on.stats), stripSkipKeys(off.stats));
}

/** Multicore epoch-scheduler run (Streaming on 4 cores). */
RunOutcome
runStreaming(const std::string &workload, unsigned coreJobs, bool elision)
{
    Graph g = makeGridGraph(40, 40, 11);
    SparseMatrix A = makeSparseMatrix(96, 8, 81);
    SparseMatrix B = makeSparseMatrix(96, 8, 82);
    SparseMatrix Bt = B.transpose();

    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.coreJobs = coreJobs;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 500'000'000;
    cfg.cycleElision = elision;
    System sys(cfg);
    auto wl = makeWorkload(workload, &g, &A, &Bt);
    BuildContext ctx(&sys);
    wl->build(ctx, Variant::Streaming);
    sys.configure(ctx.spec);

    RunOutcome out;
    out.res = sys.run();
    out.agg = sys.aggregateCoreStats();
    out.stats = sys.dumpStats();
    out.verified = wl->verify(sys);
    return out;
}

class SkipIdentityMulticore : public testing::TestWithParam<SkipCase>
{
};

// Epoch mode: partition-local elision clamps to the epoch edge and must
// be invisible at any --core-jobs value. Each workload is checked at
// core-jobs 2 and 4 against the single-stepped core-jobs 1 reference.
TEST_P(SkipIdentityMulticore, EpochElisionBitIdenticalAcrossCoreJobs)
{
    const SkipCase &c = GetParam();
    RunOutcome ref = runStreaming(c.workload, 1, false);
    ASSERT_TRUE(ref.res.finished);
    auto refStats = stripSkipKeys(ref.stats);
    for (unsigned coreJobs : {2u, 4u}) {
        RunOutcome on = runStreaming(c.workload, coreJobs, true);
        ASSERT_TRUE(on.res.finished);
        EXPECT_TRUE(on.verified);
        EXPECT_EQ(on.res.cycles, ref.res.cycles) << coreJobs;
        EXPECT_EQ(on.res.instrs, ref.res.instrs) << coreJobs;
        EXPECT_EQ(stripSkipKeys(on.stats), refStats) << coreJobs;
    }
}

// One Streaming case per workload keeps the matrix bounded; the
// single-core legs above already cover both golden variants.
const SkipCase kMulticoreCases[] = {
    {"bfs", Variant::Streaming},  {"cc", Variant::Streaming},
    {"prd", Variant::Streaming},  {"spmm", Variant::Streaming},
    {"silo", Variant::Streaming},
};

INSTANTIATE_TEST_SUITE_P(StreamingWorkloads, SkipIdentityMulticore,
                         testing::ValuesIn(kMulticoreCases), caseName);

// ---------------------------------------------------------------------
// Synthetic all-stall program

/**
 * A DRAM-bound pointer chase: every load depends on the previous one
 * and the chain is a random permutation over a region much larger than
 * the LLC, so the core spends nearly all its time quiescent, waiting on
 * one in-flight miss. The oracle must fast-forward each wait straight
 * to the event-queue deadline.
 */
TEST(SkipAllStall, ChaseSkipsToEventQueueDeadline)
{
    constexpr uint64_t kBase = 0x100000;
    constexpr uint64_t kLines = 16384; // 1 MiB at 64 B/line: 2x the L3
    constexpr uint64_t kHops = 512;

    auto run = [&](bool elision) {
        // Singly-linked random cycle over the lines (xorshift walk
        // visiting a deterministic permutation).
        std::vector<uint64_t> order(kLines);
        uint64_t x = 99991;
        for (uint64_t i = 0; i < kLines; i++) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            order[i] = i;
            std::swap(order[i], order[x % (i + 1)]);
        }

        Program p("chase");
        Asm a(&p);
        a.li(R::r1, kBase + order[0] * 64);
        a.li(R::r2, kHops);
        auto loop = a.label();
        a.bind(loop);
        a.ld(R::r1, R::r1, 0); // next pointer: serialized miss chain
        a.addi(R::r2, R::r2, -1);
        a.bnei(R::r2, 0, loop);
        a.halt();
        a.finalize();

        SystemConfig cfg;
        cfg.watchdogCycles = 300'000;
        cfg.maxCycles = 500'000'000;
        cfg.cycleElision = elision;
        System sys(cfg);
        for (uint64_t i = 0; i < kLines; i++) {
            uint64_t next = order[(i + 1) % kLines];
            sys.memory().write(kBase + order[i] * 64, 8,
                               kBase + next * 64);
        }
        MachineSpec spec;
        spec.addThread(0, 0, &p);
        sys.configure(spec);

        RunOutcome out;
        out.res = sys.run();
        out.agg = sys.aggregateCoreStats();
        out.stats = sys.dumpStats();
        return out;
    };

    RunOutcome on = run(true);
    RunOutcome off = run(false);
    ASSERT_TRUE(on.res.finished);
    ASSERT_TRUE(off.res.finished);

    // Invisible: identical cycles and a bit-identical dump, including
    // every CPI-stack bucket the elided cycles were credited to.
    EXPECT_EQ(on.res.cycles, off.res.cycles);
    EXPECT_EQ(stripSkipKeys(on.stats), stripSkipKeys(off.stats));
    for (size_t b = 0; b < NUM_CPI_BUCKETS; b++)
        EXPECT_EQ(on.agg.cpiCycles[b], off.agg.cpiCycles[b]) << b;

    // Effective: the chase is almost entirely stall time, so the
    // oracle must elide the bulk of the run in long stretches (a skip
    // that stopped short of the event-queue deadline would fragment
    // into many short windows and tick far more cycles).
    EXPECT_EQ(off.agg.skippedCycles, 0u);
    EXPECT_GT(on.agg.skippedCycles, on.res.cycles / 2);
    ASSERT_GT(on.agg.skipWindows, 0u);
    EXPECT_GT(on.agg.skippedCycles / on.agg.skipWindows, 8u);
    EXPECT_EQ(on.stats.at("sim.skippedCycles"),
              static_cast<double>(on.agg.skippedCycles));
}

// The toggle is part of the configuration identity: a cached result row
// must record whether it was produced with elision available, like any
// other config field (the coreJobs precedent).
TEST(SkipConfig, ToggleKeysTheFingerprint)
{
    SystemConfig a;
    SystemConfig b;
    b.cycleElision = false;
    EXPECT_NE(configFingerprint(a), configFingerprint(b));
}

} // namespace
} // namespace pipette
