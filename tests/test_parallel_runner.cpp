// Host-parallel runner tests (src/parallel/): TaskPool scheduling --
// ordered collection, no lost or duplicated tasks, inline serial mode
// -- and the SimJobPool determinism contract: the 12 golden workload
// rows produce bit-identical statistics at every worker count, because
// each job is a self-contained System and results are collected in
// submission order.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "parallel/sim_job_pool.h"
#include "workloads/bfs.h"
#include "workloads/cc.h"
#include "workloads/graph.h"
#include "workloads/matrix.h"
#include "workloads/prd.h"
#include "workloads/radii.h"
#include "workloads/silo.h"
#include "workloads/spmm.h"

namespace pipette {
namespace {

using parallel::SimJob;
using parallel::SimJobPool;
using parallel::TaskPool;

// ------------------------------------------------------------ TaskPool

TEST(TaskPool, SingleWorkerRunsInlineOnCallerThread)
{
    TaskPool pool(1);
    EXPECT_EQ(pool.numWorkers(), 1u);
    std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> ranOn(3);
    std::vector<TaskPool::Task> tasks;
    for (size_t i = 0; i < ranOn.size(); i++)
        tasks.push_back(
            [&ranOn, i] { ranOn[i] = std::this_thread::get_id(); });
    pool.run(std::move(tasks));
    for (std::thread::id id : ranOn)
        EXPECT_EQ(id, caller)
            << "--jobs 1 must reproduce the serial path: no threads";
}

TEST(TaskPool, EmptyBatchIsANoOp)
{
    TaskPool pool(4);
    size_t calls = 0;
    pool.run({}, [&](size_t) { calls++; });
    EXPECT_EQ(calls, 0u);
}

// Hammer the pool with far more tasks than workers, several batches on
// the same pool: every task runs exactly once, and the collector
// delivers 0,1,2,... regardless of scheduling.
TEST(TaskPool, HammerOrderedCollectionNoLostNoDuplicated)
{
    for (unsigned workers : {2u, 4u, 8u}) {
        TaskPool pool(workers);
        EXPECT_EQ(pool.numWorkers(), workers);
        for (int batch = 0; batch < 3; batch++) {
            const size_t n = 150;
            std::vector<std::atomic<int>> execs(n);
            std::vector<int> values(n, -1);
            std::vector<TaskPool::Task> tasks;
            for (size_t i = 0; i < n; i++)
                tasks.push_back([&execs, &values, i] {
                    execs[i].fetch_add(1);
                    values[i] = static_cast<int>(i) * 3 + 1;
                });
            std::vector<size_t> order;
            pool.run(std::move(tasks), [&](size_t i) {
                order.push_back(i);
                // Ordered delivery: the task's own result must already
                // be visible on the collector thread.
                EXPECT_EQ(values[i], static_cast<int>(i) * 3 + 1);
            });
            ASSERT_EQ(order.size(), n)
                << workers << " workers, batch " << batch;
            for (size_t i = 0; i < n; i++) {
                EXPECT_EQ(order[i], i) << "collection must be in order";
                EXPECT_EQ(execs[i].load(), 1)
                    << "task " << i << " lost or duplicated";
            }
        }
    }
}

// --------------------------------------------------------- SimJobPool

TEST(SimJobPool, HammerTrivialJobsOrderedAndComplete)
{
    // >100 trivial cells sharing one immutable graph. Every job must
    // finish, verify, arrive in order, and -- being identical -- report
    // identical cycle counts even with maximal scheduling overlap.
    Graph g = makeGridGraph(10, 10, 7);
    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    cfg.maxCycles = 100'000'000;

    std::vector<SimJob> jobs(120);
    for (size_t i = 0; i < jobs.size(); i++) {
        jobs[i].config = cfg;
        jobs[i].make = [&g](uint64_t) {
            return std::make_unique<BfsWorkload>(&g);
        };
        jobs[i].variant = Variant::Serial;
        jobs[i].input = "tiny";
        jobs[i].seed = i;
    }

    SimJobPool pool(8);
    std::vector<size_t> order;
    std::vector<RunResult> rs = pool.runAll(jobs, [&](size_t i,
                                                      const RunResult &r) {
        order.push_back(i);
        EXPECT_TRUE(r.verified);
    });

    ASSERT_EQ(rs.size(), jobs.size());
    ASSERT_EQ(order.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); i++) {
        EXPECT_EQ(order[i], i);
        EXPECT_TRUE(rs[i].finished);
        EXPECT_TRUE(rs[i].verified);
        EXPECT_EQ(rs[i].cycles, rs[0].cycles)
            << "identical jobs must report identical simulated time";
        EXPECT_EQ(rs[i].instrs, rs[0].instrs);
    }
}

// ------------------------------------- parallel-vs-serial bit identity

// The golden rows of tests/test_determinism.cpp, same configurations.
struct GoldenCase
{
    const char *workload;
    Variant variant;
    uint64_t cycles;
    uint64_t instrs;
    uint64_t squashed;
    uint64_t enqueues;
    uint64_t dequeues;
};

const GoldenCase kGolden[] = {
    {"bfs", Variant::Serial, 156469, 88660, 145543, 0, 0},
    {"bfs", Variant::Pipette, 92599, 51220, 42536, 1735, 12615},
    {"cc", Variant::Serial, 487852, 481468, 622204, 0, 0},
    {"cc", Variant::Pipette, 394676, 362338, 131575, 16983, 74199},
    {"radii", Variant::Serial, 6243995, 4545820, 9356785, 0, 0},
    {"radii", Variant::Pipette, 3844583, 3561173, 2119712, 95487, 418781},
    {"prd", Variant::Serial, 1798685, 1404987, 1768091, 0, 0},
    {"prd", Variant::Pipette, 870350, 1298036, 556825, 48041, 172841},
    {"spmm", Variant::Serial, 105304, 108495, 92332, 0, 0},
    {"spmm", Variant::Pipette, 84148, 152320, 24679, 11711, 10469},
    {"silo", Variant::Serial, 62467, 70723, 38944, 0, 0},
    {"silo", Variant::Pipette, 34845, 75529, 14137, 1602, 1602},
};

/** Shared immutable inputs, built once on the main thread. */
struct GoldenInputs
{
    Graph g = makeGridGraph(40, 40, 11);
    SparseMatrix A = makeSparseMatrix(96, 8, 81);
    SparseMatrix Bt = makeSparseMatrix(96, 8, 82).transpose();
};

std::unique_ptr<WorkloadBase>
makeGoldenWorkload(const GoldenInputs &in, const std::string &name)
{
    if (name == "bfs")
        return std::make_unique<BfsWorkload>(&in.g);
    if (name == "cc")
        return std::make_unique<CcWorkload>(&in.g);
    if (name == "radii")
        return std::make_unique<RadiiWorkload>(&in.g);
    if (name == "prd")
        return std::make_unique<PrdWorkload>(&in.g);
    if (name == "spmm") {
        SpmmWorkload::Options o;
        o.numCols = 6;
        return std::make_unique<SpmmWorkload>(&in.A, &in.Bt, o);
    }
    SiloWorkload::Options o;
    o.numKeys = 2000;
    o.numQueries = 400;
    return std::make_unique<SiloWorkload>(o);
}

std::vector<SimJob>
goldenJobs(const GoldenInputs &in)
{
    SystemConfig cfg;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 500'000'000;
    std::vector<SimJob> jobs;
    for (const GoldenCase &c : kGolden) {
        SimJob j;
        j.config = cfg;
        j.make = [&in, name = std::string(c.workload)](uint64_t) {
            return makeGoldenWorkload(in, name);
        };
        j.variant = c.variant;
        j.input = c.workload;
        j.seed = jobs.size();
        jobs.push_back(std::move(j));
    }
    return jobs;
}

/** Every deterministic field of a result, flattened for == compare. */
std::map<std::string, double>
flatten(const RunResult &r)
{
    std::map<std::string, double> m;
    r.agg.dump("core", m);
    m["cycles"] = static_cast<double>(r.cycles);
    m["instrs"] = static_cast<double>(r.instrs);
    m["ipc"] = r.ipc;
    m["verified"] = r.verified ? 1 : 0;
    m["finished"] = r.finished ? 1 : 0;
    for (size_t i = 0; i < NUM_CPI_BUCKETS; i++)
        m["cpiFrac" + std::to_string(i)] = r.cpiFrac[i];
    m["energy.coreDynamic"] = r.energy.coreDynamic;
    m["energy.coreStatic"] = r.energy.coreStatic;
    m["energy.cache"] = r.energy.cache;
    m["energy.dram"] = r.energy.dram;
    return m;
}

/** Inputs + the serial (--jobs 1, inline) reference, computed once and
 *  reused by all three worker-count cases. */
struct GoldenReference
{
    GoldenInputs in;
    std::vector<RunResult> serial =
        SimJobPool(1).runAll(goldenJobs(in));

    static const GoldenReference &
    get()
    {
        static GoldenReference ref;
        return ref;
    }
};

class ParallelBitIdentity : public testing::TestWithParam<unsigned>
{
};

TEST_P(ParallelBitIdentity, GoldenRowsMatchSerialExactly)
{
    const unsigned workers = GetParam();
    const GoldenReference &ref = GoldenReference::get();
    const std::vector<RunResult> &serial = ref.serial;
    std::vector<SimJob> jobs = goldenJobs(ref.in);

    // Parallel run under test.
    std::vector<RunResult> par = SimJobPool(workers).runAll(jobs);

    ASSERT_EQ(serial.size(), std::size(kGolden));
    ASSERT_EQ(par.size(), std::size(kGolden));
    for (size_t i = 0; i < std::size(kGolden); i++) {
        const GoldenCase &c = kGolden[i];
        SCOPED_TRACE(std::string(c.workload) + "/" +
                     variantName(c.variant));
        // Pinned to the seed goldens: parallel execution must not
        // perturb simulated behavior at all.
        EXPECT_TRUE(par[i].verified);
        EXPECT_EQ(par[i].cycles, c.cycles);
        EXPECT_EQ(par[i].instrs, c.instrs);
        EXPECT_EQ(par[i].agg.squashedInstrs, c.squashed);
        EXPECT_EQ(par[i].agg.enqueues, c.enqueues);
        EXPECT_EQ(par[i].agg.dequeues, c.dequeues);
        // And bit-identical to the serial path across the whole
        // flattened stat set, not just the pinned counters.
        EXPECT_EQ(flatten(par[i]), flatten(serial[i]));
    }
}

INSTANTIATE_TEST_SUITE_P(Jobs, ParallelBitIdentity,
                         testing::Values(2u, 4u, 8u),
                         [](const testing::TestParamInfo<unsigned> &info) {
                             return "jobs" +
                                    std::to_string(info.param);
                         });

// ------------------------- intra-System core-jobs bit identity
//
// The epoch-barrier scheduler's contract: a multicore System produces
// byte-identical results whether its core partitions share one host
// thread (coreJobs 1) or fan out over several, composed with any outer
// SimJobPool worker count.

std::vector<SimJob>
multicoreJobs(const GoldenInputs &in, unsigned coreJobs)
{
    SystemConfig cfg;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 500'000'000;
    cfg.coreJobs = coreJobs;
    const Variant variants[] = {Variant::DataParallel, Variant::Streaming,
                                Variant::MulticorePipette};
    std::vector<SimJob> jobs;
    for (Variant v : variants) {
        SimJob j;
        j.config = cfg;
        j.make = [&in](uint64_t) {
            return std::make_unique<BfsWorkload>(&in.g);
        };
        j.variant = v;
        j.input = "grid";
        j.numCores = 4;
        j.seed = jobs.size();
        jobs.push_back(std::move(j));
    }
    return jobs;
}

struct CoreJobsCase
{
    unsigned jobs;
    unsigned coreJobs;
};

class CoreJobsBitIdentity : public testing::TestWithParam<CoreJobsCase>
{
};

TEST_P(CoreJobsBitIdentity, MulticoreRowsMatchCoreJobs1Exactly)
{
    const CoreJobsCase c = GetParam();
    const GoldenInputs &in = GoldenReference::get().in;
    // Reference: coreJobs 1 (inline phase), outer pool inline too.
    static const std::vector<RunResult> *ref = nullptr;
    if (!ref) {
        static std::vector<RunResult> r =
            SimJobPool(1).runAll(multicoreJobs(GoldenReference::get().in, 1));
        ref = &r;
    }
    std::vector<RunResult> par =
        SimJobPool(c.jobs).runAll(multicoreJobs(in, c.coreJobs));
    ASSERT_EQ(par.size(), ref->size());
    for (size_t i = 0; i < par.size(); i++) {
        SCOPED_TRACE("variant " + std::string(variantName(
                         multicoreJobs(in, 1)[i].variant)));
        EXPECT_TRUE(par[i].finished);
        EXPECT_TRUE(par[i].verified);
        EXPECT_EQ(flatten(par[i]), flatten((*ref)[i]));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CoreJobsBitIdentity,
    testing::Values(CoreJobsCase{1, 2}, CoreJobsCase{1, 4},
                    CoreJobsCase{4, 2}, CoreJobsCase{4, 4}),
    [](const testing::TestParamInfo<CoreJobsCase> &info) {
        return "jobs" + std::to_string(info.param.jobs) + "corejobs" +
               std::to_string(info.param.coreJobs);
    });

} // namespace
} // namespace pipette
