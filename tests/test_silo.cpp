// Silo (B+tree / YCSB-C) workload tests across all variants.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/interp.h"
#include "workloads/silo.h"

namespace pipette {
namespace {

SiloWorkload::Options
smallOpts(uint32_t keys = 3000, uint32_t queries = 600)
{
    SiloWorkload::Options o;
    o.numKeys = keys;
    o.numQueries = queries;
    return o;
}

struct SiloCase
{
    uint32_t keys;
    Variant variant;
};

std::string
caseName(const testing::TestParamInfo<SiloCase> &info)
{
    std::string s = "k" + std::to_string(info.param.keys) + "_" +
                    variantName(info.param.variant);
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

class SiloVariants : public testing::TestWithParam<SiloCase>
{
};

TEST_P(SiloVariants, MatchesReference)
{
    const SiloCase &c = GetParam();
    SystemConfig cfg;
    cfg.numCores = c.variant == Variant::Streaming ? 4 : 1;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 300'000'000;
    System sys(cfg);

    SiloWorkload wl(smallOpts(c.keys));
    BuildContext ctx(&sys);
    wl.build(ctx, c.variant);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << sys.core(0).debugString();
    EXPECT_TRUE(wl.verify(sys));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SiloVariants,
    testing::Values(SiloCase{3000, Variant::Serial},
                    SiloCase{3000, Variant::DataParallel},
                    SiloCase{3000, Variant::Pipette},
                    SiloCase{3000, Variant::PipetteNoRa},
                    SiloCase{3000, Variant::Streaming},
                    // Deeper tree: stages own multiple levels.
                    SiloCase{50000, Variant::Pipette},
                    SiloCase{50000, Variant::Serial},
                    SiloCase{50000, Variant::DataParallel},
                    // Shallow tree: depth < stages.
                    SiloCase{200, Variant::Pipette}),
    caseName);

TEST(SiloInterp, PipetteFunctionallyCorrect)
{
    SystemConfig cfg;
    System sys(cfg);
    SiloWorkload wl(smallOpts(2000, 400));
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Pipette);
    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

TEST(SiloInterp, DataParallelFunctionallyCorrect)
{
    SystemConfig cfg;
    System sys(cfg);
    SiloWorkload wl(smallOpts(2000, 400));
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::DataParallel);
    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

} // namespace
} // namespace pipette
