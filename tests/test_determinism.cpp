// Determinism regression tests. The host-performance work (instruction
// pooling, timing wheel, queue-stall memoization) must not perturb
// simulated behavior: every workload's cycle count and stats are pinned
// to golden values recorded before that work, and running the same
// configuration twice in one process must be bit-identical.

#include <gtest/gtest.h>

#include <memory>

#include "core/system.h"
#include "workloads/bfs.h"
#include "workloads/cc.h"
#include "workloads/graph.h"
#include "workloads/matrix.h"
#include "workloads/prd.h"
#include "workloads/radii.h"
#include "workloads/silo.h"
#include "workloads/spmm.h"

namespace pipette {
namespace {

struct GoldenCase
{
    const char *workload;
    Variant variant;
    uint64_t cycles;
    uint64_t instrs;
    uint64_t squashed;
    uint64_t enqueues;
    uint64_t dequeues;
};

// Recorded from the seed simulator (pre-pooling) on the configurations
// below. Any change to these numbers is a simulated-behavior change and
// must be intentional, not a side effect of host-side optimization.
const GoldenCase kGolden[] = {
    {"bfs", Variant::Serial, 156469, 88660, 145543, 0, 0},
    {"bfs", Variant::Pipette, 92599, 51220, 42536, 1735, 12615},
    {"cc", Variant::Serial, 487852, 481468, 622204, 0, 0},
    {"cc", Variant::Pipette, 394676, 362338, 131575, 16983, 74199},
    {"radii", Variant::Serial, 6243995, 4545820, 9356785, 0, 0},
    {"radii", Variant::Pipette, 3844583, 3561173, 2119712, 95487, 418781},
    {"prd", Variant::Serial, 1798685, 1404987, 1768091, 0, 0},
    {"prd", Variant::Pipette, 870350, 1298036, 556825, 48041, 172841},
    {"spmm", Variant::Serial, 105304, 108495, 92332, 0, 0},
    {"spmm", Variant::Pipette, 84148, 152320, 24679, 11711, 10469},
    {"silo", Variant::Serial, 62467, 70723, 38944, 0, 0},
    {"silo", Variant::Pipette, 34845, 75529, 14137, 1602, 1602},
};

std::string
caseName(const testing::TestParamInfo<GoldenCase> &info)
{
    return std::string(info.param.workload) + "_" +
           variantName(info.param.variant);
}

/** Build the workload named in the case on the canonical inputs. */
std::unique_ptr<WorkloadBase>
makeWorkload(const std::string &name, Graph *g, SparseMatrix *A,
             SparseMatrix *Bt)
{
    if (name == "bfs")
        return std::make_unique<BfsWorkload>(g);
    if (name == "cc")
        return std::make_unique<CcWorkload>(g);
    if (name == "radii")
        return std::make_unique<RadiiWorkload>(g);
    if (name == "prd")
        return std::make_unique<PrdWorkload>(g);
    if (name == "spmm") {
        SpmmWorkload::Options o;
        o.numCols = 6;
        return std::make_unique<SpmmWorkload>(A, Bt, o);
    }
    SiloWorkload::Options o;
    o.numKeys = 2000;
    o.numQueries = 400;
    return std::make_unique<SiloWorkload>(o);
}

struct RunOutcome
{
    System::RunResult res;
    CoreStats agg;
    std::map<std::string, double> stats;
    bool verified = false;
};

RunOutcome
runCase(const std::string &workload, Variant v)
{
    Graph g = makeGridGraph(40, 40, 11);
    SparseMatrix A = makeSparseMatrix(96, 8, 81);
    SparseMatrix B = makeSparseMatrix(96, 8, 82);
    SparseMatrix Bt = B.transpose();

    SystemConfig cfg;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 500'000'000;
    System sys(cfg);
    auto wl = makeWorkload(workload, &g, &A, &Bt);
    BuildContext ctx(&sys);
    wl->build(ctx, v);
    sys.configure(ctx.spec);

    RunOutcome out;
    out.res = sys.run();
    out.agg = sys.aggregateCoreStats();
    out.stats = sys.dumpStats();
    out.verified = wl->verify(sys);
    return out;
}

class GoldenStats : public testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenStats, MatchesSeedExactly)
{
    const GoldenCase &c = GetParam();
    RunOutcome out = runCase(c.workload, c.variant);

    ASSERT_TRUE(out.res.finished);
    EXPECT_TRUE(out.verified);
    EXPECT_EQ(out.res.cycles, c.cycles);
    EXPECT_EQ(out.res.instrs, c.instrs);
    EXPECT_EQ(out.agg.squashedInstrs, c.squashed);
    EXPECT_EQ(out.agg.enqueues, c.enqueues);
    EXPECT_EQ(out.agg.dequeues, c.dequeues);

    // Default pool sizing must be invisible to simulated timing: no
    // rename ever stalled on pool or arena exhaustion.
    EXPECT_EQ(out.agg.dynInstPoolStalls, 0u);
    EXPECT_EQ(out.agg.checkpointStalls, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, GoldenStats,
                         testing::ValuesIn(kGolden), caseName);

// Same configuration, same process, two fresh Systems: every stat in
// the full dump must match bit for bit. Catches any dependence on host
// state (pointer values, allocation order, hash iteration order).
TEST(Determinism, RunTwiceIsBitIdentical)
{
    RunOutcome a = runCase("bfs", Variant::Pipette);
    RunOutcome b = runCase("bfs", Variant::Pipette);
    ASSERT_TRUE(a.res.finished);
    ASSERT_TRUE(b.res.finished);
    EXPECT_EQ(a.res.cycles, b.res.cycles);
    EXPECT_EQ(a.res.instrs, b.res.instrs);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(Determinism, RunTwiceIsBitIdenticalSerial)
{
    RunOutcome a = runCase("silo", Variant::Serial);
    RunOutcome b = runCase("silo", Variant::Serial);
    ASSERT_TRUE(a.res.finished);
    ASSERT_TRUE(b.res.finished);
    EXPECT_EQ(a.stats, b.stats);
}

} // namespace
} // namespace pipette
