// Host-side self-profiling tests (DESIGN.md §14). The layer's whole
// contract is that it *observes without perturbing*: every simulated
// statistic must be byte-identical with profiling on or off, across all
// 12 golden workload rows, under the sweep-level SimJobPool at several
// --jobs values, and under the multicore epoch scheduler at several
// --core-jobs values. On top of the identity matrix: the manifest must
// be well-formed with phase times that sum to at most the wall clock,
// worker busy+idle must account for the pool's thread lifetime, the
// config fingerprint must not see the profiling switches, and the
// steady-state run loop must stay allocation-free with profiling off.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/system.h"
#include "harness/runner.h"
#include "hostprof/hostprof.h"
#include "parallel/sim_job_pool.h"
#include "parallel/task_pool.h"
#include "sim/config.h"
#include "workloads/bfs.h"
#include "workloads/cc.h"
#include "workloads/graph.h"
#include "workloads/matrix.h"
#include "workloads/prd.h"
#include "workloads/radii.h"
#include "workloads/silo.h"
#include "workloads/spmm.h"

// Host-heap instrumentation for the zero-allocation steady-state test
// (same pattern as test_pool.cpp): count every operator-new in the
// process with a relaxed atomic.
namespace {
std::atomic<size_t> g_hostAllocs{0};

struct AllocCounterScope
{
    size_t start = g_hostAllocs.load(std::memory_order_relaxed);
    size_t
    delta() const
    {
        return g_hostAllocs.load(std::memory_order_relaxed) - start;
    }
};
} // namespace

void *
operator new(size_t n)
{
    g_hostAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n)
{
    g_hostAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new(size_t n, std::align_val_t al)
{
    g_hostAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<size_t>(al), n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n, std::align_val_t al)
{
    g_hostAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<size_t>(al), n))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace pipette {
namespace {

/** Turn profiling on for one test body and always turn it off again,
 *  so test order can never leak the switch into another test. */
struct ProfGuard
{
    explicit ProfGuard(bool trace = false)
    {
        hostprof::reset();
        hostprof::setEnabled(true);
        if (trace)
            hostprof::setTraceEnabled(true);
    }
    ~ProfGuard()
    {
        hostprof::setTraceEnabled(false);
        hostprof::setEnabled(false);
    }
};

/** Drop the elision totals (host-execution detail, may fragment
 *  differently across --core-jobs values; see test_skip.cpp). */
std::map<std::string, double>
stripSkipKeys(const std::map<std::string, double> &m)
{
    std::map<std::string, double> out;
    for (const auto &[k, v] : m) {
        if (k.find("skippedCycles") != std::string::npos ||
            k.find("skipWindows") != std::string::npos)
            continue;
        out.emplace(k, v);
    }
    return out;
}

struct GoldenCase
{
    const char *workload;
    Variant variant;
};

// The 12 golden rows of test_determinism.cpp.
const GoldenCase kCases[] = {
    {"bfs", Variant::Serial},    {"bfs", Variant::Pipette},
    {"cc", Variant::Serial},     {"cc", Variant::Pipette},
    {"radii", Variant::Serial},  {"radii", Variant::Pipette},
    {"prd", Variant::Serial},    {"prd", Variant::Pipette},
    {"spmm", Variant::Serial},   {"spmm", Variant::Pipette},
    {"silo", Variant::Serial},   {"silo", Variant::Pipette},
};

std::string
caseName(const testing::TestParamInfo<GoldenCase> &info)
{
    return std::string(info.param.workload) + "_" +
           variantName(info.param.variant);
}

std::unique_ptr<WorkloadBase>
makeWorkload(const std::string &name, const Graph *g,
             const SparseMatrix *A, const SparseMatrix *Bt)
{
    if (name == "bfs")
        return std::make_unique<BfsWorkload>(g);
    if (name == "cc")
        return std::make_unique<CcWorkload>(g);
    if (name == "radii")
        return std::make_unique<RadiiWorkload>(g);
    if (name == "prd")
        return std::make_unique<PrdWorkload>(g);
    if (name == "spmm") {
        SpmmWorkload::Options o;
        o.numCols = 6;
        return std::make_unique<SpmmWorkload>(A, Bt, o);
    }
    SiloWorkload::Options o;
    o.numKeys = 2000;
    o.numQueries = 400;
    return std::make_unique<SiloWorkload>(o);
}

SystemConfig
goldenConfig()
{
    SystemConfig cfg;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 500'000'000;
    cfg.cycleElision = true;
    return cfg;
}

struct RunOutcome
{
    System::RunResult res;
    CoreStats agg;
    std::map<std::string, double> stats;
    bool verified = false;
};

/** One golden single-core run (same inputs as test_determinism.cpp). */
RunOutcome
runCase(const std::string &workload, Variant v)
{
    Graph g = makeGridGraph(40, 40, 11);
    SparseMatrix A = makeSparseMatrix(96, 8, 81);
    SparseMatrix B = makeSparseMatrix(96, 8, 82);
    SparseMatrix Bt = B.transpose();

    System sys(goldenConfig());
    auto wl = makeWorkload(workload, &g, &A, &Bt);
    BuildContext ctx(&sys);
    wl->build(ctx, v);
    sys.configure(ctx.spec);

    RunOutcome out;
    out.res = sys.run();
    out.agg = sys.aggregateCoreStats();
    out.stats = sys.dumpStats();
    out.verified = wl->verify(sys);
    return out;
}

/** Multicore epoch-scheduler run (Streaming on 4 cores). */
RunOutcome
runStreaming(const std::string &workload, unsigned coreJobs,
             uint32_t epochLength = 0)
{
    Graph g = makeGridGraph(40, 40, 11);
    SparseMatrix A = makeSparseMatrix(96, 8, 81);
    SparseMatrix B = makeSparseMatrix(96, 8, 82);
    SparseMatrix Bt = B.transpose();

    SystemConfig cfg = goldenConfig();
    cfg.numCores = 4;
    cfg.coreJobs = coreJobs;
    if (epochLength)
        cfg.epochLength = epochLength;
    System sys(cfg);
    auto wl = makeWorkload(workload, &g, &A, &Bt);
    BuildContext ctx(&sys);
    wl->build(ctx, Variant::Streaming);
    sys.configure(ctx.spec);

    RunOutcome out;
    out.res = sys.run();
    out.agg = sys.aggregateCoreStats();
    out.stats = sys.dumpStats();
    out.verified = wl->verify(sys);
    return out;
}

class HostProfIdentity : public testing::TestWithParam<GoldenCase>
{
};

// The non-perturbation contract, row by row: the full stats dump --
// including the elision totals, since the toggle does not change how
// the run executes -- must be byte-identical with profiling (and
// tracing) on vs off.
TEST_P(HostProfIdentity, FullDumpBitIdenticalOnVsOff)
{
    const GoldenCase &c = GetParam();
    RunOutcome off = runCase(c.workload, c.variant);
    ASSERT_TRUE(off.res.finished);

    RunOutcome on;
    {
        ProfGuard prof(/*trace=*/true);
        on = runCase(c.workload, c.variant);
    }
    ASSERT_TRUE(on.res.finished);
    EXPECT_TRUE(on.verified);
    EXPECT_EQ(on.res.cycles, off.res.cycles);
    EXPECT_EQ(on.res.instrs, off.res.instrs);
    EXPECT_EQ(on.stats, off.stats);
}

INSTANTIATE_TEST_SUITE_P(AllGoldenRows, HostProfIdentity,
                         testing::ValuesIn(kCases), caseName);

// Multicore: the epoch scheduler is the most instrumented code path
// (EpochPhase/EpochBarrier scopes, partition timing, imbalance
// histogram). Profiling must be invisible at core-jobs 1 and 4, both
// with the default epoch (auto-inline path) and with an epoch long
// enough to actually dispatch to the pool.
TEST(HostProfIdentityMulticore, EpochSchedulerBitIdentical)
{
    for (const char *wl : {"bfs", "silo"}) {
        for (uint32_t epochLength : {0u, 2048u}) {
            RunOutcome off = runStreaming(wl, 1, epochLength);
            ASSERT_TRUE(off.res.finished) << wl;
            auto offStats = stripSkipKeys(off.stats);
            for (unsigned coreJobs : {1u, 4u}) {
                RunOutcome on;
                {
                    ProfGuard prof(/*trace=*/true);
                    on = runStreaming(wl, coreJobs, epochLength);
                }
                ASSERT_TRUE(on.res.finished) << wl << coreJobs;
                EXPECT_TRUE(on.verified) << wl << coreJobs;
                EXPECT_EQ(on.res.cycles, off.res.cycles)
                    << wl << coreJobs;
                EXPECT_EQ(on.res.instrs, off.res.instrs)
                    << wl << coreJobs;
                if (coreJobs == 1)
                    EXPECT_EQ(on.stats, off.stats) << wl;
                else
                    EXPECT_EQ(stripSkipKeys(on.stats), offStats)
                        << wl << coreJobs;
            }
        }
    }
}

// Sweep-level parallelism: all 12 golden rows through the SimJobPool
// with profiling on at --jobs 1 and 4 must reproduce the profiling-off
// serial reference byte for byte (agg dump included).
TEST(HostProfIdentityJobs, SimJobPoolBitIdenticalAcrossJobs)
{
    Graph g = makeGridGraph(40, 40, 11);
    SparseMatrix A = makeSparseMatrix(96, 8, 81);
    SparseMatrix B = makeSparseMatrix(96, 8, 82);
    SparseMatrix Bt = B.transpose();

    std::vector<parallel::SimJob> jobs;
    for (const GoldenCase &c : kCases) {
        parallel::SimJob j;
        j.config = goldenConfig();
        j.make = [&g, &A, &Bt, w = std::string(c.workload)](uint64_t) {
            return makeWorkload(w, &g, &A, &Bt);
        };
        j.variant = c.variant;
        j.input = c.workload;
        j.seed = jobs.size();
        jobs.push_back(std::move(j));
    }

    auto dumps = [](const std::vector<RunResult> &rs) {
        std::vector<std::map<std::string, double>> out;
        for (const RunResult &r : rs) {
            std::map<std::string, double> m;
            r.agg.dump("agg", m);
            m["cycles"] = static_cast<double>(r.cycles);
            m["instrs"] = static_cast<double>(r.instrs);
            m["verified"] = r.verified ? 1 : 0;
            out.push_back(std::move(m));
        }
        return out;
    };

    parallel::SimJobPool serial(1);
    auto ref = dumps(serial.runAll(jobs));
    ASSERT_EQ(ref.size(), jobs.size());

    ProfGuard prof;
    for (unsigned workers : {1u, 4u}) {
        parallel::SimJobPool pool(workers);
        auto got = dumps(pool.runAll(jobs));
        ASSERT_EQ(got.size(), ref.size()) << workers;
        for (size_t i = 0; i < ref.size(); i++)
            EXPECT_EQ(got[i], ref[i]) << jobs[i].input << " jobs="
                                      << workers;
    }
}

// The profiling switches live outside SystemConfig by construction;
// the sweep-cache fingerprint must not move when they flip.
TEST(HostProf, ConfigFingerprintIgnoresProfiling)
{
    SystemConfig cfg = goldenConfig();
    uint64_t off = configFingerprint(cfg);
    {
        ProfGuard prof(/*trace=*/true);
        EXPECT_EQ(configFingerprint(cfg), off);
    }
    EXPECT_EQ(configFingerprint(cfg), off);
}

// Phase accounting: exclusive times must sum to at most the profile
// wall clock, the big phases of a detailed run must be present, and
// the elision telemetry must agree exactly with the simulator's own
// skip counters.
TEST(HostProf, SnapshotPhasesSumBelowWallAndElisionMatches)
{
    ProfGuard prof;
    Runner r(goldenConfig());
    Graph g = makeGridGraph(40, 40, 11);
    BfsWorkload wl(&g);
    RunResult res = r.run(wl, Variant::Pipette, "grid", 1);
    ASSERT_TRUE(res.verified);

    hostprof::Snapshot s = hostprof::snapshot();
    EXPECT_GT(s.wallSeconds, 0.0);

    uint64_t sumNs = 0;
    for (const auto &p : s.phases)
        sumNs += p.ns;
    // Single-threaded here, so the per-thread bound is a process bound.
    EXPECT_LE(static_cast<double>(sumNs) * 1e-9, s.wallSeconds);

    auto agg = [&s](hostprof::Phase p) {
        return s.phases[static_cast<size_t>(p)];
    };
    EXPECT_EQ(agg(hostprof::Phase::Build).count, 1u);
    EXPECT_EQ(agg(hostprof::Phase::DetailedSim).count, 1u);
    EXPECT_GT(agg(hostprof::Phase::DetailedSim).ns, 0u);
    EXPECT_EQ(agg(hostprof::Phase::Verify).count, 1u);

    // Elision telemetry == simulator skip counters, window for window.
    EXPECT_EQ(s.skipWindowLen.count(), res.agg.skipWindows);
    EXPECT_EQ(s.skipWindowLen.sum(), res.agg.skippedCycles);
    EXPECT_GT(res.agg.skipWindows, 0u);
}

// Epoch-scheduler telemetry: a pooled multicore run must account its
// phase work against the pool wall clock sanely (work <= wall x
// workers, barrier wait = the difference, imbalance histogram fed once
// per pooled epoch).
TEST(HostProf, EpochTelemetryAccountsPooledPhases)
{
    ProfGuard prof;
    Graph g = makeGridGraph(40, 40, 11);
    SystemConfig cfg = goldenConfig();
    cfg.numCores = 4;
    cfg.coreJobs = 2;
    cfg.epochLength = 2048; // 2048 x 4 cores >= kEpochParallelMinWork
    ASSERT_GE(static_cast<uint64_t>(cfg.epochLength) * 4,
              System::kEpochParallelMinWork);

    System sys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Streaming);
    sys.configure(ctx.spec);
    ASSERT_TRUE(sys.run().finished);
    EXPECT_TRUE(wl.verify(sys));

    const hostprof::EpochTelemetry &t = sys.epochTelemetry();
    EXPECT_GT(t.epochs, 0u);
    EXPECT_GT(t.pooledEpochs, 0u);
    EXPECT_LE(t.pooledEpochs, t.epochs);
    EXPECT_GT(t.phaseWorkNs, 0u);
    EXPECT_LE(t.phaseWorkNs, t.wallWorkersNs);
    EXPECT_LE(t.barrierWaitNs, t.wallWorkersNs);
    EXPECT_EQ(t.imbalanceNs.count(), t.pooledEpochs);

    hostprof::EpochSummary sum = hostprof::summarizeEpoch(t);
    EXPECT_EQ(sum.epochs, t.epochs);
    EXPECT_GE(sum.barrierWaitFrac, 0.0);
    EXPECT_LE(sum.barrierWaitFrac, 1.0);
    EXPECT_GE(sum.imbalanceP99Us, sum.imbalanceP50Us);
}

// Worker telemetry: every nanosecond of a pool worker's life is either
// busy (executing) or idle (waiting), so busy + idle must account for
// the pool's summed thread lifetime, and the task/spawn counters must
// be exact.
TEST(HostProf, PoolBusyPlusIdleAccountsForLifetime)
{
    constexpr unsigned kWorkers = 4;
    constexpr size_t kTasks = 32;
    ProfGuard prof;
    {
        parallel::TaskPool pool(kWorkers);
        ASSERT_EQ(pool.numWorkers(), kWorkers);
        // Let the workers sit idle for a bit, then spin.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        std::vector<parallel::TaskPool::Task> tasks;
        for (size_t i = 0; i < kTasks; i++)
            tasks.push_back([] {
                auto until = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(2);
                while (std::chrono::steady_clock::now() < until) {
                }
            });
        pool.run(std::move(tasks));
    } // dtor joins and records lifetime

    hostprof::Snapshot s = hostprof::snapshot();
    EXPECT_EQ(s.poolWorkersSpawned, kWorkers);
    EXPECT_EQ(s.poolTasks, kTasks);
    EXPECT_GT(s.poolLifetimeNs, 0u);
    // ~64ms of spinning across the batch.
    EXPECT_GT(s.poolBusyNs, 10'000'000u);
    EXPECT_GT(s.poolIdleNs, 0u);

    double accounted = static_cast<double>(s.poolBusyNs + s.poolIdleNs);
    double lifetime = static_cast<double>(s.poolLifetimeNs);
    // Loose bounds: spawn ramp and loop overhead are unaccounted, and
    // clocks are read at slightly different points.
    EXPECT_GT(accounted, 0.5 * lifetime);
    EXPECT_LT(accounted, 1.10 * lifetime + 5e6);
}

// The manifest and trace exporters: files get written, look like the
// documented JSON, and the manifest's phase accounting covers the run.
TEST(HostProf, ManifestAndTraceWellFormed)
{
    ProfGuard prof(/*trace=*/true);
    Runner r(goldenConfig());
    Graph g = makeGridGraph(40, 40, 11);
    BfsWorkload wl(&g);
    RunResult res = r.run(wl, Variant::Pipette, "grid", 1);
    ASSERT_TRUE(res.verified);

    auto slurp = [](const std::string &path) {
        std::string out;
        FILE *f = std::fopen(path.c_str(), "rb");
        EXPECT_NE(f, nullptr) << path;
        if (!f)
            return out;
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            out.append(buf, n);
        std::fclose(f);
        return out;
    };
    auto balanced = [](const std::string &s) {
        long depth = 0;
        for (char c : s) {
            if (c == '{' || c == '[')
                depth++;
            else if (c == '}' || c == ']')
                depth--;
            if (depth < 0)
                return false;
        }
        return depth == 0;
    };

    std::string dir = testing::TempDir();
    std::string mpath = dir + "/pipette_hostprof_manifest.json";
    std::string tpath = dir + "/pipette_hostprof_trace.json";
    std::string err;

    hostprof::ManifestMeta meta;
    meta.bench = "test_hostprof";
    meta.configFingerprint = configFingerprint(goldenConfig());
    meta.hostSecondsTotal = res.hostSeconds;
    ASSERT_TRUE(hostprof::writeManifest(mpath, meta, &err)) << err;
    ASSERT_TRUE(hostprof::writeTrace(tpath, &err)) << err;

    std::string m = slurp(mpath);
    ASSERT_FALSE(m.empty());
    EXPECT_EQ(m.front(), '{');
    EXPECT_TRUE(balanced(m));
    for (const char *key :
         {"\"pipette_host_prof\"", "\"bench\": \"test_hostprof\"",
          "\"build\"", "\"config_fingerprint\"", "\"phases\"",
          "\"detailed_sim\"", "\"phase_wall_coverage\"", "\"pool\"",
          "\"epoch\"", "\"elision\"", "\"wall_seconds\""})
        EXPECT_NE(m.find(key), std::string::npos) << key;

    std::string t = slurp(tpath);
    ASSERT_FALSE(t.empty());
    EXPECT_TRUE(balanced(t));
    EXPECT_NE(t.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(t.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(t.find("detailed_sim"), std::string::npos);

    std::remove(mpath.c_str());
    std::remove(tpath.c_str());
}

TEST(HostProf, WritersFailCleanlyOnBadPath)
{
    ProfGuard prof;
    std::string err;
    hostprof::ManifestMeta meta;
    EXPECT_FALSE(hostprof::writeManifest(
        "/nonexistent-dir/never/manifest.json", meta, &err));
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(
        hostprof::writeTrace("/nonexistent-dir/never/trace.json", &err));
    EXPECT_FALSE(err.empty());
}

// With profiling off (the default), the instrumented steady-state run
// loop must stay allocation-free: every hook is a single relaxed load.
TEST(HostProf, ZeroHostAllocationsInSteadyStateWhenOff)
{
    ASSERT_FALSE(hostprof::enabled());
    Graph g = makeGridGraph(24, 24, 5);
    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    cfg.maxCycles = 500'000'000;
    cfg.cycleElision = true;
    System sys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Pipette);
    sys.configure(ctx.spec);

    System::RunResult warm = sys.runFor(30'000);
    ASSERT_EQ(warm.stopReason, System::StopReason::None);

    AllocCounterScope scope;
    sys.runFor(10'000);
    EXPECT_EQ(scope.delta(), 0u);
}

} // namespace
} // namespace pipette
