// Property-style sweeps over memory-hierarchy configurations, plus the
// commit-trace facility and configuration surface.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/system.h"
#include "isa/assembler.h"
#include "mem/hierarchy.h"
#include "workloads/bfs.h"

namespace pipette {
namespace {

/** Misses of a pointer-chase over `footprint` bytes with an L1 of
 *  `l1Bytes`. */
uint64_t
chaseMisses(uint32_t l1Bytes, uint64_t footprint)
{
    MemConfig m;
    m.l1d = {l1Bytes, 8, 4, 10};
    m.prefetcherEnabled = false;
    EventQueue eq;
    MemoryHierarchy h(m, 1, &eq);
    Cycle t = 0;
    // Strided walk, repeated: second pass hits iff it fits.
    for (int pass = 0; pass < 4; pass++)
        for (Addr a = 0; a < footprint; a += 64)
            t = h.access(0, 0x100000 + a, false, t, nullptr);
    return h.l1Stats(0).misses;
}

class CacheSizeSweep
    : public testing::TestWithParam<std::pair<uint32_t, uint32_t>>
{
};

TEST_P(CacheSizeSweep, BiggerCachesNeverMissMore)
{
    auto [small, big] = GetParam();
    // Footprint between the two sizes: the big cache captures it.
    uint64_t footprint = (small + big) / 2;
    uint64_t mSmall = chaseMisses(small, footprint);
    uint64_t mBig = chaseMisses(big, footprint);
    EXPECT_LT(mBig, mSmall);
    // The big cache retains the whole footprint: only cold misses.
    EXPECT_EQ(mBig, footprint / 64);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CacheSizeSweep,
    testing::Values(std::make_pair(8u * 1024, 16u * 1024),
                    std::make_pair(16u * 1024, 32u * 1024),
                    std::make_pair(32u * 1024, 64u * 1024),
                    std::make_pair(64u * 1024, 128u * 1024)));

TEST(CacheProps, HigherAssociativityHelpsConflictPattern)
{
    // Access k lines that all map to the same set of a direct-ish cache.
    auto missesWithWays = [](uint32_t ways) {
        CacheConfig cfg{8 * 1024, ways, 4, 8};
        CacheArray c(cfg, 64, "t");
        uint32_t sets = c.numSets();
        uint64_t misses = 0;
        for (int round = 0; round < 8; round++) {
            for (uint64_t k = 0; k < 6; k++) {
                if (!c.lookup(k * sets))
                    misses++, c.insert(k * sets, false, false);
            }
        }
        return misses;
    };
    EXPECT_GT(missesWithWays(2), missesWithWays(8));
}

TEST(CacheProps, DramLatencyScalesEndToEnd)
{
    auto missLatency = [](uint32_t dramLat) {
        MemConfig m;
        m.prefetcherEnabled = false;
        m.dramLatency = dramLat;
        EventQueue eq;
        MemoryHierarchy h(m, 1, &eq);
        return h.access(0, 0x1000, false, 0, nullptr);
    };
    Cycle fast = missLatency(50);
    Cycle slow = missLatency(400);
    EXPECT_EQ(slow - fast, 350u);
}

TEST(CacheProps, PrefetcherNeverChangesResults)
{
    // Same BFS run with and without the prefetcher: identical
    // architectural output, different timing.
    Graph g = makeGridGraph(20, 20, 9);
    auto run = [&](bool pf) {
        SystemConfig cfg;
        cfg.mem.prefetcherEnabled = pf;
        System sys(cfg);
        BfsWorkload wl(&g);
        BuildContext ctx(&sys);
        wl.build(ctx, Variant::Pipette);
        sys.configure(ctx.spec);
        EXPECT_TRUE(sys.run().finished);
        EXPECT_TRUE(wl.verify(sys));
        return sys.hierarchy().l1Stats(0).prefetches;
    };
    EXPECT_EQ(run(false), 0u);
    EXPECT_GT(run(true), 0u);
}

TEST(Trace, CommitTraceListsInstructions)
{
    Program p("traced");
    Asm a(&p);
    a.li(R::r1, 7);
    a.addi(R::r1, R::r1, 1);
    a.halt();
    a.finalize();

    FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    SystemConfig cfg;
    cfg.core.traceFile = f;
    System sys(cfg);
    MachineSpec spec;
    spec.addThread(0, 0, &p);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);

    std::rewind(f);
    char buf[4096] = {};
    size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::string out(buf, got);
    EXPECT_NE(out.find("li"), std::string::npos);
    EXPECT_NE(out.find("addi"), std::string::npos);
    EXPECT_NE(out.find("halt"), std::string::npos);
    EXPECT_NE(out.find("c0.t0"), std::string::npos);
}

TEST(Config, SummaryMentionsKeyParameters)
{
    SystemConfig cfg;
    std::string s = cfg.summary();
    EXPECT_NE(s.find("ROB 224"), std::string::npos);
    EXPECT_NE(s.find("PRF 212"), std::string::npos);
    EXPECT_NE(s.find("16 queues"), std::string::npos);
    EXPECT_NE(s.find("4 RAs"), std::string::npos);
}

} // namespace
} // namespace pipette
