// Input generator and host-reference tests.

#include <gtest/gtest.h>

#include "workloads/graph.h"
#include "workloads/matrix.h"
#include "workloads/refimpl.h"

namespace pipette {
namespace {

TEST(Graph, GridShape)
{
    Graph g = makeGridGraph(10, 10, 1);
    EXPECT_EQ(g.numVertices, 100u);
    // Interior vertices have degree 4; edges are symmetric.
    EXPECT_EQ(g.numEdges(), 2u * (9 * 10 + 10 * 9));
    for (uint32_t v = 0; v < g.numVertices; v++)
        EXPECT_LE(g.degree(v), 4u);
}

TEST(Graph, GridIsConnectedUnderBfs)
{
    Graph g = makeGridGraph(8, 8, 2);
    auto d = bfsReference(g, 0);
    for (uint32_t v = 0; v < g.numVertices; v++)
        EXPECT_NE(d[v], 0xFFFFFFFFu);
}

TEST(Graph, RmatIsSymmetricAndDeduped)
{
    Graph g = makeRmatGraph(256, 1024, 3);
    // Every edge (u,v) has a reverse edge (v,u).
    for (uint32_t u = 0; u < g.numVertices; u++) {
        for (uint32_t e = g.offsets[u]; e < g.offsets[u + 1]; e++) {
            uint32_t v = g.neighbors[e];
            EXPECT_NE(u, v); // no self loops
            bool found = false;
            for (uint32_t f = g.offsets[v]; f < g.offsets[v + 1]; f++)
                found |= g.neighbors[f] == u;
            EXPECT_TRUE(found);
        }
    }
}

TEST(Graph, RmatIsSkewed)
{
    Graph g = makeRmatGraph(4096, 32768, 5);
    uint32_t maxDeg = 0;
    for (uint32_t v = 0; v < g.numVertices; v++)
        maxDeg = std::max(maxDeg, g.degree(v));
    // Power-law: the hub degree far exceeds the average.
    EXPECT_GT(maxDeg, 8 * g.avgDegree());
}

TEST(Graph, GeneratorsAreDeterministic)
{
    Graph a = makeRmatGraph(512, 2048, 7);
    Graph b = makeRmatGraph(512, 2048, 7);
    EXPECT_EQ(a.neighbors, b.neighbors);
    Graph c = makeRmatGraph(512, 2048, 8);
    EXPECT_NE(a.neighbors, c.neighbors);
}

TEST(Graph, Table5InputsHaveExpectedProfiles)
{
    auto inputs = makeTable5Inputs(0.25);
    ASSERT_EQ(inputs.size(), 5u);
    EXPECT_EQ(inputs[0].name, "Co");
    EXPECT_EQ(inputs[4].name, "Rd");
    // Road proxy: low degree.
    EXPECT_LT(inputs[4].graph.avgDegree(), 4.1);
    // Internet proxy is denser than the road proxy.
    EXPECT_GT(inputs[3].graph.avgDegree(), inputs[4].graph.avgDegree());
}

TEST(Matrix, GeneratorRespectsAvgNnz)
{
    SparseMatrix m = makeSparseMatrix(2048, 16.0, 9);
    EXPECT_NEAR(m.avgNnzPerRow(), 16.0, 4.0);
    // Rows are sorted and deduped.
    for (uint32_t r = 0; r < m.n; r++) {
        for (uint32_t k = m.rowPtr[r] + 1; k < m.rowPtr[r + 1]; k++)
            EXPECT_LT(m.colIdx[k - 1], m.colIdx[k]);
    }
}

TEST(Matrix, TransposeRoundTrip)
{
    SparseMatrix m = makeSparseMatrix(128, 8.0, 11);
    SparseMatrix tt = m.transpose().transpose();
    EXPECT_EQ(m.rowPtr, tt.rowPtr);
    EXPECT_EQ(m.colIdx, tt.colIdx);
    EXPECT_EQ(m.values, tt.values);
}

TEST(RefImpl, BfsDistancesOnKnownGrid)
{
    // Unpermuted 1D path as a degenerate grid.
    Graph g = makeGridGraph(1, 10, 0); // permutation still applies
    auto d = bfsReference(g, 0);
    // BFS distances on a path sum to a known total regardless of perm.
    uint64_t sum = 0, maxd = 0;
    for (uint32_t v = 0; v < 10; v++) {
        sum += d[v];
        maxd = std::max<uint64_t>(maxd, d[v]);
    }
    // Path from some endpoint-or-middle: max distance <= 9.
    EXPECT_LE(maxd, 9u);
    EXPECT_GT(sum, 0u);
}

TEST(RefImpl, CcLabelsAreComponentMinima)
{
    // Two disjoint cliques via explicit edges.
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (uint32_t u = 0; u < 4; u++)
        for (uint32_t v = u + 1; v < 4; v++) {
            edges.emplace_back(u, v);
            edges.emplace_back(v, u);
        }
    for (uint32_t u = 4; u < 8; u++)
        for (uint32_t v = u + 1; v < 8; v++) {
            edges.emplace_back(u, v);
            edges.emplace_back(v, u);
        }
    Graph g = buildCsr(8, edges);
    auto comp = ccReference(g);
    for (uint32_t v = 0; v < 4; v++)
        EXPECT_EQ(comp[v], 0u);
    for (uint32_t v = 4; v < 8; v++)
        EXPECT_EQ(comp[v], 4u);
}

TEST(RefImpl, PrdConvergesAndIsDeterministic)
{
    Graph g = makeRmatGraph(256, 1024, 5);
    PrdParams p;
    auto r1 = prdReference(g, p);
    auto r2 = prdReference(g, p);
    EXPECT_EQ(r1, r2);
    uint64_t total = 0;
    for (uint64_t x : r1)
        total += x;
    EXPECT_GT(total, 0u);
}

TEST(RefImpl, RadiiBoundsAndSourceRounds)
{
    Graph g = makeGridGraph(12, 12, 4);
    RadiiParams p;
    p.numSources = 8;
    auto radii = radiiReference(g, p);
    uint32_t maxr = 0;
    for (uint32_t r : radii)
        maxr = std::max(maxr, r);
    // On a 12x12 grid the eccentricity is at most 22.
    EXPECT_LE(maxr, 23u);
    EXPECT_GT(maxr, 3u);
}

TEST(RefImpl, SpmmMatchesDenseComputation)
{
    SparseMatrix A = makeSparseMatrix(64, 6.0, 21);
    SparseMatrix B = makeSparseMatrix(64, 6.0, 22);
    SparseMatrix Bt = B.transpose();
    std::vector<uint32_t> cols = {0, 7, 13};
    auto got = spmmReference(A, Bt, cols);

    // Dense recomputation.
    auto dense = [&](const SparseMatrix &m) {
        std::vector<uint64_t> d(m.n * m.n, 0);
        for (uint32_t r = 0; r < m.n; r++)
            for (uint32_t k = m.rowPtr[r]; k < m.rowPtr[r + 1]; k++)
                d[r * m.n + m.colIdx[k]] = m.values[k];
        return d;
    };
    auto dA = dense(A), dB = dense(B);
    for (uint32_t i = 0; i < A.n; i++) {
        for (size_t kk = 0; kk < cols.size(); kk++) {
            uint64_t sum = 0;
            for (uint32_t k = 0; k < A.n; k++)
                sum += dA[i * A.n + k] * dB[k * B.n + cols[kk]];
            EXPECT_EQ(got[i * cols.size() + kk], sum);
        }
    }
}

TEST(RefImpl, BPlusTreeLookupAllKeys)
{
    BPlusTree t = buildBPlusTree(1000);
    EXPECT_GE(t.depth, 3u);
    for (uint32_t k = 0; k < 1000; k++)
        EXPECT_EQ(t.lookup(k), k * 2654435761u);
}

TEST(RefImpl, BPlusTreeDepthGrowsWithKeys)
{
    EXPECT_LT(buildBPlusTree(50).depth, buildBPlusTree(50000).depth);
}

TEST(RefImpl, YcsbQueriesAreSkewed)
{
    auto qs = makeYcsbQueries(10000, 20000, 0.99, 3);
    std::vector<uint32_t> counts(10000, 0);
    for (uint32_t q : qs)
        counts[q]++;
    uint32_t maxc = *std::max_element(counts.begin(), counts.end());
    // Zipf 0.99: the hottest key appears far above average (2 per key).
    EXPECT_GT(maxc, 100u);
}

} // namespace
} // namespace pipette
