// Guardrail tests (src/debug/): every injected fault class must be
// caught by the matching guardrail -- a structured StopReason plus a
// non-empty textual diagnosis, never a crash -- while clean runs with
// every guardrail enabled still finish, verify, and pass the drain
// leak accounting.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/assembler.h"

namespace pipette {
namespace {

constexpr Reg QOUT = R::r11;
constexpr Reg QIN = R::r12;

SystemConfig
guardCfg(uint32_t cores = 1)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.watchdogCycles = 25'000;
    cfg.maxCycles = 20'000'000;
    return cfg;
}

/**
 * Producer/consumer pipeline on core 0: the producer streams 1..n
 * through queue 0 (optionally bounced through an indirect RA into
 * queue 1) and terminates with a CV; the consumer folds with add.
 */
struct Pipeline
{
    Program prod{"prod"};
    Program cons{"cons"};
    MachineSpec spec;
    uint32_t n;

    static constexpr Addr ARR = 0x80000;

    explicit Pipeline(uint32_t n_, bool useRa = false,
                      bool slowConsumer = false)
        : n(n_)
    {
        {
            Asm a(&prod);
            auto loop = a.label();
            a.li(R::r1, 1);
            a.bind(loop);
            a.mov(QOUT, R::r1);
            a.addi(R::r1, R::r1, 1);
            a.blti(R::r1, n + 1, loop);
            a.enqc(QOUT, R::zero);
            a.halt();
            a.finalize();
        }
        Addr handler;
        {
            Asm a(&cons);
            auto loop = a.label();
            auto hdl = a.label("h");
            a.li(R::r1, 0);
            a.bind(loop);
            a.add(R::r1, R::r1, QIN);
            if (slowConsumer) {
                // Dependent mul chain: commit lags, the ROB fills, and
                // committed entries pile up in the queue (so a payload
                // fault always finds an un-dequeued committed head).
                a.mul(R::r2, R::r1, R::r1);
                a.mul(R::r2, R::r2, R::r2);
                a.mul(R::r2, R::r2, R::r2);
            }
            a.jmp(loop);
            a.bind(hdl);
            a.halt();
            a.finalize();
            handler = cons.labels().at("h");
        }
        spec.addThread(0, 0, &prod).queueMaps.push_back(
            {QOUT.idx, 0, QueueDir::Out});
        auto &tc = spec.addThread(0, 1, &cons);
        tc.deqHandler = static_cast<int64_t>(handler);
        if (useRa) {
            tc.queueMaps.push_back({QIN.idx, 1, QueueDir::In});
            spec.ras.push_back({0, 0, 1, ARR, 8, RaMode::Indirect});
        } else {
            tc.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
        }
    }

    /** Host expectation of the consumer's r1 (no-RA shape). */
    uint64_t
    expect() const
    {
        return static_cast<uint64_t>(n) * (n + 1) / 2;
    }
};

TEST(Guardrails, CleanRunWithEverythingOn)
{
    Pipeline p(400);
    SystemConfig cfg = guardCfg();
    cfg.guardrails.lockstepOracle = true;
    cfg.guardrails.invariantChecks = true;
    cfg.guardrails.flightRecorderDepth = 32;
    System sys(cfg);
    sys.configure(p.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << res.diagnosis;
    EXPECT_EQ(res.stopReason, System::StopReason::Finished);
    EXPECT_FALSE(res.deadlock);
    EXPECT_TRUE(res.diagnosis.empty()) << res.diagnosis;
    EXPECT_EQ(sys.core(0).readArchReg(1, 1), p.expect());
}

TEST(Guardrails, OracleCatchesFlippedPayloadAtFirstBadCommit)
{
    // Reference: the same program without faults, to know how long a
    // clean run takes.
    Cycle cleanCycles;
    {
        Pipeline p(3000, false, /*slowConsumer=*/true);
        System sys(guardCfg());
        sys.configure(p.spec);
        auto res = sys.run();
        ASSERT_TRUE(res.finished);
        ASSERT_EQ(sys.core(0).readArchReg(1, 1), p.expect());
        cleanCycles = res.cycles;
    }

    Pipeline p(3000, false, /*slowConsumer=*/true);
    SystemConfig cfg = guardCfg();
    cfg.guardrails.lockstepOracle = true;
    cfg.guardrails.faults.push_back(
        {FaultKind::FlipQueuePayload, 2000, 0, 0, 0, 0, 17});
    System sys(cfg);
    sys.configure(p.spec);
    auto res = sys.run();
    EXPECT_FALSE(res.finished);
    EXPECT_EQ(res.stopReason, System::StopReason::OracleDivergence);
    ASSERT_FALSE(res.diagnosis.empty());
    EXPECT_NE(res.diagnosis.find("lockstep oracle divergence"),
              std::string::npos)
        << res.diagnosis;
    EXPECT_NE(res.diagnosis.find("golden model"), std::string::npos)
        << res.diagnosis;
    // Caught at the first diverging commit, not by comparing final
    // state: the run stops well before a clean run finishes.
    EXPECT_LT(res.cycles, cleanCycles);
}

TEST(Guardrails, OracleCleanAcrossSkipDrainAndEnqTraps)
{
    // Enqueue-trap producer + skiptc consumer (the non-speculative
    // drain path the oracle mirrors through onSkipDrain).
    Program prod("prod");
    Addr enqHandler;
    {
        Asm a(&prod);
        auto loop = a.label();
        auto hdl = a.label("eh");
        auto done = a.label("done");
        a.li(R::r1, 0);
        a.li(R::r2, 0);
        a.bind(loop);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.jmp(loop);
        a.bind(hdl);
        a.addi(R::r2, R::r2, 1);
        a.enqc(QOUT, R::r2);
        a.beqi(R::r2, 2, done);
        a.li(R::r1, 1000);
        a.jmp(loop);
        a.bind(done);
        a.halt();
        a.finalize();
        enqHandler = prod.labels().at("eh");
    }
    Program cons("cons");
    {
        Asm a(&cons);
        a.mov(R::r1, QIN);
        a.skiptc(R::r2, QIN);
        a.mov(R::r3, QIN);
        a.skiptc(R::r4, QIN);
        a.halt();
        a.finalize();
    }
    MachineSpec spec;
    auto &tp = spec.addThread(0, 0, &prod);
    tp.queueMaps.push_back({QOUT.idx, 0, QueueDir::Out});
    tp.enqHandler = static_cast<int64_t>(enqHandler);
    spec.addThread(0, 1, &cons).queueMaps.push_back(
        {QIN.idx, 0, QueueDir::In});
    spec.queueCaps.push_back({0, 0, 8});

    SystemConfig cfg = guardCfg();
    cfg.guardrails.lockstepOracle = true;
    cfg.guardrails.invariantChecks = true;
    System sys(cfg);
    sys.configure(spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << res.diagnosis;
    EXPECT_EQ(res.stopReason, System::StopReason::Finished);
    EXPECT_EQ(sys.core(0).readArchReg(1, 2), 1u);
    EXPECT_EQ(sys.core(0).readArchReg(1, 4), 2u);
}

TEST(Guardrails, InvariantCheckCatchesCorruptQueueState)
{
    Pipeline p(2000);
    SystemConfig cfg = guardCfg();
    cfg.guardrails.invariantChecks = true;
    cfg.guardrails.faults.push_back(
        {FaultKind::CorruptQueueState, 1000, 0, 0, 0, 0, 0});
    System sys(cfg);
    sys.configure(p.spec);
    auto res = sys.run();
    EXPECT_FALSE(res.finished);
    EXPECT_EQ(res.stopReason, System::StopReason::InvariantViolation);
    ASSERT_FALSE(res.diagnosis.empty());
    EXPECT_NE(res.diagnosis.find("QRM pointer invariant violated"),
              std::string::npos)
        << res.diagnosis;
    // Caught the same cycle the fault landed, before any consumer could
    // dequeue the phantom entry.
    EXPECT_EQ(res.cycles, 1000u);
}

TEST(Guardrails, WatchdogDiagnosesBlockedDynInstPool)
{
    Program p("spin");
    {
        Asm a(&p);
        auto loop = a.label();
        a.li(R::r1, 0);
        a.bind(loop);
        a.addi(R::r1, R::r1, 1);
        a.jmp(loop);
        a.halt();
        a.finalize();
    }
    MachineSpec spec;
    spec.addThread(0, 0, &p);
    SystemConfig cfg = guardCfg();
    cfg.guardrails.faults.push_back(
        {FaultKind::BlockDynInstPool, 200, 0, 0, 0, 0, 0});
    System sys(cfg);
    sys.configure(spec);
    auto res = sys.run();
    EXPECT_FALSE(res.finished);
    EXPECT_TRUE(res.deadlock);
    EXPECT_EQ(res.stopReason, System::StopReason::WatchdogDeadlock);
    ASSERT_FALSE(res.diagnosis.empty());
    EXPECT_NE(res.diagnosis.find("fault-injected block"),
              std::string::npos)
        << res.diagnosis;
    EXPECT_NE(res.diagnosis.find("TRUE DEADLOCK"), std::string::npos)
        << res.diagnosis;
}

TEST(Guardrails, WatchdogDiagnosesBlockedCheckpointArena)
{
    Program p("loop");
    {
        Asm a(&p);
        auto loop = a.label();
        a.li(R::r1, 0);
        a.bind(loop);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 1'000'000'000, loop); // branch: needs a checkpoint
        a.halt();
        a.finalize();
    }
    MachineSpec spec;
    spec.addThread(0, 0, &p);
    SystemConfig cfg = guardCfg();
    cfg.guardrails.faults.push_back(
        {FaultKind::BlockCheckpointArena, 200, 0, 0, 0, 0, 0});
    System sys(cfg);
    sys.configure(spec);
    auto res = sys.run();
    EXPECT_FALSE(res.finished);
    EXPECT_EQ(res.stopReason, System::StopReason::WatchdogDeadlock);
    EXPECT_NE(res.diagnosis.find("fault-injected block"),
              std::string::npos)
        << res.diagnosis;
}

TEST(Guardrails, WatchdogDiagnosesStalledRa)
{
    Pipeline p(400, /*useRa=*/true);
    SystemConfig cfg = guardCfg();
    cfg.guardrails.faults.push_back(
        {FaultKind::DelayRaCompletion, 500, 0, 0, 0, 0, 0});
    System sys(cfg);
    for (uint32_t i = 0; i < 1024; i++)
        sys.memory().write(Pipeline::ARR + 8 * i, 8, i * 7 + 3);
    sys.configure(p.spec);
    auto res = sys.run();
    EXPECT_FALSE(res.finished);
    EXPECT_EQ(res.stopReason, System::StopReason::WatchdogDeadlock);
    ASSERT_FALSE(res.diagnosis.empty());
    EXPECT_NE(res.diagnosis.find("ra core 0"), std::string::npos)
        << res.diagnosis;
    EXPECT_NE(res.diagnosis.find("STALLED"), std::string::npos)
        << res.diagnosis;
    EXPECT_NE(res.diagnosis.find("TRUE DEADLOCK"), std::string::npos)
        << res.diagnosis;
}

TEST(Guardrails, WatchdogDiagnosesStalledConnectorWithFlightRecorder)
{
    Program prod("prod");
    {
        Asm a(&prod);
        auto loop = a.label();
        a.li(R::r1, 1);
        a.bind(loop);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 501, loop);
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, 0);
        a.bind(loop);
        a.add(R::r1, R::r1, QIN);
        a.jmp(loop);
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(1, 0, &cons);
    tc.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    spec.connectors.push_back({0, 0, 1, 0});

    SystemConfig cfg = guardCfg(2);
    cfg.guardrails.flightRecorderDepth = 16;
    cfg.guardrails.faults.push_back(
        {FaultKind::DropConnectorCredits, 500, 0, 0, 0, 0, 0});
    System sys(cfg);
    sys.configure(spec);
    auto res = sys.run();
    EXPECT_FALSE(res.finished);
    EXPECT_EQ(res.stopReason, System::StopReason::WatchdogDeadlock);
    ASSERT_FALSE(res.diagnosis.empty());
    EXPECT_NE(res.diagnosis.find("connector c0.q0 -> c1.q0"),
              std::string::npos)
        << res.diagnosis;
    EXPECT_NE(res.diagnosis.find("STALLED"), std::string::npos)
        << res.diagnosis;
    EXPECT_NE(res.diagnosis.find("flight recorder"), std::string::npos)
        << res.diagnosis;
}

TEST(Guardrails, MaxCyclesStopReason)
{
    Program p("spin");
    {
        Asm a(&p);
        auto loop = a.label();
        a.bind(loop);
        a.addi(R::r1, R::r1, 1);
        a.jmp(loop);
        a.halt();
        a.finalize();
    }
    MachineSpec spec;
    spec.addThread(0, 0, &p);
    SystemConfig cfg = guardCfg();
    cfg.maxCycles = 5000;
    cfg.watchdogCycles = 1'000'000;
    System sys(cfg);
    sys.configure(spec);
    auto res = sys.run();
    EXPECT_FALSE(res.finished);
    EXPECT_FALSE(res.deadlock);
    EXPECT_EQ(res.stopReason, System::StopReason::MaxCycles);
}

TEST(Guardrails, RunForReportsNoneMidRun)
{
    Pipeline p(200);
    System sys(guardCfg());
    sys.configure(p.spec);
    auto res = sys.runFor(50);
    EXPECT_FALSE(res.finished);
    EXPECT_EQ(res.stopReason, System::StopReason::None);
    for (int i = 0; i < 10'000 && !res.finished; i++)
        res = sys.runFor(5000);
    ASSERT_TRUE(res.finished);
    EXPECT_EQ(res.stopReason, System::StopReason::Finished);
    EXPECT_EQ(sys.core(0).readArchReg(1, 1), p.expect());
}

TEST(Guardrails, StopReasonNames)
{
    EXPECT_STREQ(System::stopReasonName(System::StopReason::Finished),
                 "finished");
    EXPECT_STREQ(
        System::stopReasonName(System::StopReason::WatchdogDeadlock),
        "watchdog-deadlock");
    EXPECT_STREQ(
        System::stopReasonName(System::StopReason::OracleDivergence),
        "oracle-divergence");
    EXPECT_STREQ(
        System::stopReasonName(System::StopReason::InvariantViolation),
        "invariant-violation");
}

} // namespace
} // namespace pipette
