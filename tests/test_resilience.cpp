// Resilience tests (src/resilience/; DESIGN.md section 12): durable
// checkpoint round-trips, interrupt-then-resume byte-identity at any
// --jobs value, fuzz-style corruption (truncations + bit flips load as
// CheckpointCorrupt, never UB), host-fault-tolerant window execution
// (retry once, exclude on the second failure, wall-clock timeout), the
// error taxonomy's exit codes, cooperative signal handling, worker
// fault isolation in SimJobPool, and the sweep cache's CRC trailer.

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "core/system.h"
#include "parallel/sim_job_pool.h"
#include "resilience/checkpoint.h"
#include "resilience/crc32.h"
#include "resilience/error.h"
#include "resilience/interrupt.h"
#include "sample/sampler.h"
#include "workloads/bfs.h"

namespace pipette {
namespace {

Graph
testGraph()
{
    return makeRmatGraph(512, 2048, 9);
}

SystemConfig
sampledConfig()
{
    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    cfg.maxCycles = 100'000'000;
    cfg.sampling.period = 4'000;
    cfg.sampling.window = 1'500;
    cfg.sampling.warmup = 500;
    return cfg;
}

/** Render a stats map with full double precision (byte-identity). */
std::string
statsString(const std::map<std::string, double> &m)
{
    std::string out;
    char buf[64];
    for (const auto &[k, v] : m) {
        snprintf(buf, sizeof(buf), "%.17g", v);
        out += k;
        out += '=';
        out += buf;
        out += '\n';
    }
    return out;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "pipette_resilience_" + name;
}

std::vector<uint8_t>
readAll(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::vector<uint8_t> bytes;
    if (!f)
        return bytes;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
writeAll(const std::string &path, const std::vector<uint8_t> &bytes)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

// ---------------------------------------------------------------------
// Error taxonomy.

// Every error class carries a distinct name and a distinct process
// exit code (scripts key on both), and the codes avoid the shell's
// reserved 1 and the signal range except the conventional 130.
TEST(ErrorTaxonomy, ExitCodesAndNamesAreDistinct)
{
    using resilience::SimError;
    const SimError all[] = {
        SimError::None,           SimError::ConfigError,
        SimError::InputError,     SimError::CheckpointCorrupt,
        SimError::HostResource,   SimError::WorkerFault,
        SimError::InternalInvariant, SimError::Interrupted,
    };
    std::vector<int> codes;
    std::vector<std::string> names;
    for (SimError e : all) {
        codes.push_back(resilience::exitCode(e));
        names.push_back(resilience::simErrorName(e));
    }
    for (size_t i = 0; i < codes.size(); i++) {
        for (size_t j = i + 1; j < codes.size(); j++) {
            EXPECT_NE(codes[i], codes[j]) << names[i];
            EXPECT_NE(names[i], names[j]);
        }
    }
    EXPECT_EQ(resilience::exitCode(SimError::None), 0);
    EXPECT_EQ(resilience::exitCode(SimError::CheckpointCorrupt), 4);
    EXPECT_EQ(resilience::exitCode(SimError::Interrupted), 130);
}

// Under a FatalThrowScope, fatal() becomes a structured, catchable
// ConfigError instead of process death.
TEST(ErrorTaxonomy, FatalThrowsUnderScope)
{
    FatalThrowScope scope;
    try {
        fatal("scoped fatal for test");
        FAIL() << "fatal() returned";
    } catch (const resilience::SimException &e) {
        EXPECT_EQ(e.error(), resilience::SimError::ConfigError);
        EXPECT_NE(std::string(e.what()).find("scoped fatal"),
                  std::string::npos);
    }
}

// Without a scope, fatal() still terminates -- with the taxonomy's
// config-error code, not a generic 1.
TEST(ErrorTaxonomyDeathTest, UnscopedFatalExitsWithConfigCode)
{
    EXPECT_EXIT(fatal("unscoped fatal for test"),
                testing::ExitedWithCode(2), "unscoped fatal");
}

// ---------------------------------------------------------------------
// CRC32.

TEST(Crc32, MatchesIeeeReferenceVector)
{
    // The canonical IEEE 802.3 check value.
    EXPECT_EQ(resilience::crc32("123456789", 9), 0xCBF43926u);
    resilience::Crc32 inc;
    inc.update("1234", 4);
    inc.update("56789", 5);
    EXPECT_EQ(inc.value(), 0xCBF43926u);
    EXPECT_EQ(resilience::crc32("", 0), 0u);
}

// ---------------------------------------------------------------------
// Cooperative interrupt.

TEST(Interrupt, SignalHandlerSetsFlagOnce)
{
    resilience::clearInterrupt();
    resilience::installSignalHandlers();
    ASSERT_FALSE(resilience::interruptRequested());
    std::raise(SIGTERM);
    EXPECT_TRUE(resilience::interruptRequested());
    resilience::uninstallSignalHandlers();
    resilience::clearInterrupt();
}

// A second signal must not wait for the cooperative drain: the handler
// hard-exits with the interrupted code.
TEST(InterruptDeathTest, SecondSignalHardExits130)
{
    EXPECT_EXIT(
        {
            resilience::installSignalHandlers();
            std::raise(SIGINT);
            std::raise(SIGINT);
        },
        testing::ExitedWithCode(130), "");
}

// A pending interrupt drains a detailed System at the next cycle edge
// and surfaces through the Runner as the Interrupted class.
TEST(Interrupt, SystemDrainsWithInterruptedStopReason)
{
    Graph g = testGraph();
    resilience::requestInterrupt();
    Runner r(SystemConfig{});
    BfsWorkload wl(&g);
    RunResult res = r.run(wl, Variant::Pipette, "rmat-512", 1);
    resilience::clearInterrupt();
    EXPECT_EQ(res.stopReason, System::StopReason::Interrupted);
    EXPECT_EQ(res.error, resilience::SimError::Interrupted);
    EXPECT_FALSE(res.verified);
    EXPECT_STREQ(System::stopReasonName(res.stopReason), "interrupted");
}

// ---------------------------------------------------------------------
// Durable checkpoint / resume.

// The tentpole gate: a run interrupted at a sample boundary and then
// resumed from its durable checkpoint must produce a stat dump
// byte-identical to an uninterrupted run's -- at any --jobs value.
TEST(DurableCheckpoint, InterruptThenResumeByteIdenticalStats)
{
    Graph g = testGraph();
    const std::string ck = tmpPath("resume.ckpt");

    // Uninterrupted reference (no resilience flags).
    SystemConfig clean = sampledConfig();
    BfsWorkload wlClean(&g);
    sample::SampleReport ref =
        sample::runSampled(clean, wlClean, Variant::Pipette, 1);
    ASSERT_TRUE(ref.ok);
    ASSERT_TRUE(ref.verified);
    ASSERT_GE(ref.windows, 4u);

    // Interrupted run: drains at the 2nd checkpoint, leaves the file.
    SystemConfig cfg = sampledConfig();
    cfg.resilience.checkpointOutPath = ck;
    cfg.resilience.interruptAtCheckpoint = 2;
    BfsWorkload wlInt(&g);
    sample::SampleReport inter =
        sample::runSampled(cfg, wlInt, Variant::Pipette, 1);
    EXPECT_TRUE(inter.interrupted);
    EXPECT_FALSE(inter.ok);
    EXPECT_EQ(inter.error, resilience::SimError::Interrupted);
    EXPECT_EQ(inter.windows, 2u);
    EXPECT_FALSE(resilience::interruptRequested())
        << "test-hook interrupt leaked";

    // Resume (same flags: the numeric knobs key the fingerprint), at
    // two different worker counts.
    for (unsigned jobs : {1u, 4u}) {
        SystemConfig rcfg = sampledConfig();
        rcfg.resilience.resumePath = ck;
        rcfg.resilience.interruptAtCheckpoint = 2;
        BfsWorkload wlRes(&g);
        sample::SampleReport res =
            sample::runSampled(rcfg, wlRes, Variant::Pipette, jobs);
        ASSERT_EQ(res.error, resilience::SimError::None)
            << res.errorMsg;
        EXPECT_TRUE(res.resumed);
        EXPECT_TRUE(res.ok);
        EXPECT_TRUE(res.verified);
        EXPECT_EQ(statsString(res.stats), statsString(ref.stats))
            << "resumed run diverged at jobs=" << jobs;
        EXPECT_EQ(res.extrapCycles, ref.extrapCycles);
    }
    std::remove(ck.c_str());
}

// A checkpoint written when the fast-forward completes makes the
// window phase itself resumable: loading it skips the FF and reruns
// every window, still byte-identical.
TEST(DurableCheckpoint, FfDoneCheckpointResumesWindowsOnly)
{
    Graph g = testGraph();
    const std::string ck = tmpPath("ffdone.ckpt");

    SystemConfig cfg = sampledConfig();
    cfg.resilience.checkpointOutPath = ck;
    BfsWorkload wl1(&g);
    sample::SampleReport full =
        sample::runSampled(cfg, wl1, Variant::Pipette, 1);
    ASSERT_TRUE(full.ok);

    SystemConfig rcfg = sampledConfig();
    rcfg.resilience.resumePath = ck;
    BfsWorkload wl2(&g);
    sample::SampleReport res =
        sample::runSampled(rcfg, wl2, Variant::Pipette, 2);
    ASSERT_EQ(res.error, resilience::SimError::None) << res.errorMsg;
    EXPECT_TRUE(res.resumed);
    EXPECT_TRUE(res.ok);
    EXPECT_TRUE(res.verified);
    EXPECT_EQ(statsString(res.stats), statsString(full.stats));
    std::remove(ck.c_str());
}

// A resumed run's stat registry carries no resumed-only key: identical
// key set, so downstream diffing needs no special-casing.
TEST(DurableCheckpoint, ResumeAddsNoStatKeys)
{
    Graph g = testGraph();
    SystemConfig clean = sampledConfig();
    BfsWorkload wl(&g);
    sample::SampleReport rep =
        sample::runSampled(clean, wl, Variant::Pipette, 1);
    ASSERT_TRUE(rep.ok);
    EXPECT_EQ(rep.stats.count("sample.interrupted"), 1u);
    EXPECT_EQ(rep.stats.count("sample.windowsFailed"), 1u);
    EXPECT_EQ(rep.stats.count("sample.windowRetries"), 1u);
    EXPECT_EQ(rep.stats.count("sample.checkpointsTruncated"), 1u);
    EXPECT_EQ(rep.stats.count("sample.resumed"), 0u);
    EXPECT_EQ(rep.stats.at("sample.interrupted"), 0.0);
}

// Loading a file written under different (fingerprinted) flags is a
// ConfigError with an actionable message, not silent wrong results.
TEST(DurableCheckpoint, FingerprintMismatchIsConfigError)
{
    Graph g = testGraph();
    const std::string ck = tmpPath("fpmis.ckpt");

    SystemConfig cfg = sampledConfig();
    cfg.resilience.checkpointOutPath = ck;
    cfg.resilience.interruptAtCheckpoint = 2;
    BfsWorkload wl1(&g);
    sample::runSampled(cfg, wl1, Variant::Pipette, 1);

    SystemConfig other = sampledConfig(); // knob omitted: different fp
    other.resilience.resumePath = ck;
    BfsWorkload wl2(&g);
    sample::SampleReport res =
        sample::runSampled(other, wl2, Variant::Pipette, 1);
    EXPECT_EQ(res.error, resilience::SimError::ConfigError);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.errorMsg.find("fingerprint"), std::string::npos);
    std::remove(ck.c_str());
}

// Fuzz-style robustness: truncations at many lengths and bit flips at
// many offsets must every one load as a structured CheckpointCorrupt
// (the fingerprint happens to be unreadable for some truncations --
// still never a crash, hang, or silent success).
TEST(DurableCheckpoint, TruncationsAndBitFlipsLoadAsCorrupt)
{
    Graph g = testGraph();
    const std::string ck = tmpPath("fuzz.ckpt");
    const std::string mut = tmpPath("fuzz_mut.ckpt");

    SystemConfig cfg = sampledConfig();
    cfg.resilience.checkpointOutPath = ck;
    cfg.resilience.interruptAtCheckpoint = 2;
    BfsWorkload wl(&g);
    sample::runSampled(cfg, wl, Variant::Pipette, 1);

    const std::vector<uint8_t> good = readAll(ck);
    ASSERT_GT(good.size(), 64u);

    // Sanity: the untouched file loads.
    resilience::SampleCheckpointData data;
    ASSERT_TRUE(
        resilience::loadSampleCheckpoint(ck, cfg, &data).ok());

    // Truncations, including 0 and a cut inside every region.
    for (size_t frac = 0; frac < 16; frac++) {
        std::vector<uint8_t> t(
            good.begin(),
            good.begin() +
                static_cast<ptrdiff_t>(good.size() * frac / 16));
        writeAll(mut, t);
        resilience::SampleCheckpointData d;
        resilience::LoadStatus st =
            resilience::loadSampleCheckpoint(mut, cfg, &d);
        EXPECT_EQ(st.error, resilience::SimError::CheckpointCorrupt)
            << "truncated to " << t.size() << " bytes: " << st.message;
    }

    // Bit flips spread across the file (magic, header, checkpoints,
    // journal, live pages, section framing).
    for (size_t i = 0; i < 24; i++) {
        size_t off = good.size() * i / 24;
        std::vector<uint8_t> t = good;
        t[off] ^= 0x40;
        writeAll(mut, t);
        resilience::SampleCheckpointData d;
        resilience::LoadStatus st =
            resilience::loadSampleCheckpoint(mut, cfg, &d);
        EXPECT_EQ(st.error, resilience::SimError::CheckpointCorrupt)
            << "bit flip at offset " << off << ": " << st.message;
    }

    // Missing file: a host problem, not corruption.
    resilience::SampleCheckpointData d;
    EXPECT_EQ(resilience::loadSampleCheckpoint(tmpPath("nope.ckpt"),
                                               cfg, &d)
                  .error,
              resilience::SimError::HostResource);

    std::remove(ck.c_str());
    std::remove(mut.c_str());
}

// ---------------------------------------------------------------------
// Host-fault-tolerant windows.

// One injected failure: retried inline, measurement unchanged.
TEST(WindowFaults, SingleFaultRetriesAndMatchesCleanRun)
{
    Graph g = testGraph();
    BfsWorkload wl1(&g), wl2(&g);
    SystemConfig clean = sampledConfig();
    sample::SampleReport ref =
        sample::runSampled(clean, wl1, Variant::Pipette, 1);
    ASSERT_TRUE(ref.ok);

    SystemConfig cfg = sampledConfig();
    cfg.resilience.injectWindowFailures = 1;
    cfg.resilience.faultWindow = 1;
    sample::SampleReport rep =
        sample::runSampled(cfg, wl2, Variant::Pipette, 2);
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.verified);
    EXPECT_EQ(rep.windowRetries, 1u);
    EXPECT_EQ(rep.windowsFailed, 0u);
    EXPECT_EQ(rep.windowsOk, rep.windows);
    // The retried window measures identically, so the extrapolation
    // matches the clean run exactly.
    EXPECT_EQ(rep.extrapCycles, ref.extrapCycles);
    EXPECT_EQ(rep.measuredCycles, ref.measuredCycles);
}

// Two injected failures: the window is excluded, the run completes
// degraded (the acceptance gate: windowsFailed == 1, still a report).
TEST(WindowFaults, DoubleFaultExcludesWindowRunCompletes)
{
    Graph g = testGraph();
    BfsWorkload wl(&g);
    SystemConfig cfg = sampledConfig();
    cfg.resilience.injectWindowFailures = 2;
    cfg.resilience.faultWindow = 1;
    sample::SampleReport rep =
        sample::runSampled(cfg, wl, Variant::Pipette, 2);
    EXPECT_TRUE(rep.ok) << "a lost window must degrade, not kill";
    EXPECT_TRUE(rep.verified);
    EXPECT_EQ(rep.windowsFailed, 1u);
    EXPECT_EQ(rep.windowRetries, 1u);
    EXPECT_EQ(rep.windowsOk, rep.windows - 1);
    EXPECT_EQ(rep.stats.at("sample.windowsFailed"), 1.0);
    EXPECT_EQ(rep.error, resilience::SimError::None);
    EXPECT_GT(rep.extrapCycles, 0u);
}

// A hung window trips the wall-clock watchdog on both attempts and is
// excluded; the rest of the run is unaffected.
TEST(WindowFaults, HangTripsTimeoutAndExcludesWindow)
{
    Graph g = testGraph();
    BfsWorkload wl(&g);
    SystemConfig cfg = sampledConfig();
    cfg.resilience.windowTimeoutMs = 25;
    cfg.resilience.injectWindowHangMs = 120;
    cfg.resilience.faultWindow = 0;
    sample::SampleReport rep =
        sample::runSampled(cfg, wl, Variant::Pipette, 1);
    EXPECT_TRUE(rep.ok);
    EXPECT_EQ(rep.windowsFailed, 1u);
    EXPECT_EQ(rep.windowsOk, rep.windows - 1);
}

// ---------------------------------------------------------------------
// Worker fault isolation.

// A job whose workload factory throws becomes one WorkerFault result;
// sibling jobs complete untouched.
TEST(WorkerFaults, PoolIsolatesAThrowingJob)
{
    Graph g = testGraph();
    std::vector<parallel::SimJob> jobs;
    for (int i = 0; i < 3; i++) {
        parallel::SimJob j;
        j.config = SystemConfig{};
        j.variant = Variant::Pipette;
        j.input = "rmat-512";
        if (i == 1) {
            j.make = [](uint64_t) -> std::unique_ptr<WorkloadBase> {
                throw std::runtime_error("factory exploded");
            };
        } else {
            j.make = [&g](uint64_t) {
                return std::unique_ptr<WorkloadBase>(
                    new BfsWorkload(&g));
            };
        }
        jobs.push_back(std::move(j));
    }
    parallel::SimJobPool pool(2);
    std::vector<RunResult> rs = pool.runAll(jobs);
    ASSERT_EQ(rs.size(), 3u);
    EXPECT_TRUE(rs[0].verified);
    EXPECT_TRUE(rs[2].verified);
    EXPECT_EQ(rs[1].error, resilience::SimError::WorkerFault);
    EXPECT_FALSE(rs[1].verified);
    EXPECT_NE(rs[1].diagnosis.find("factory exploded"),
              std::string::npos);
    EXPECT_EQ(runStatus(rs[1]), "NO (worker-fault)");
}

// A fatal() inside a job (bad config caught during build/run) is a
// structured ConfigError result under the Runner's throw scope.
TEST(WorkerFaults, RunnerTurnsFatalIntoConfigErrorResult)
{
    Graph g = testGraph();
    // Multicore BFS on one core is a user error the build rejects with
    // fatal(); under the Runner's scope it must come back structured.
    Runner r(SystemConfig{});
    BfsWorkload wl(&g);
    RunResult res =
        r.run(wl, Variant::MulticorePipette, "rmat-512", 1);
    EXPECT_FALSE(res.verified);
    EXPECT_EQ(res.error, resilience::SimError::ConfigError);
    EXPECT_FALSE(res.diagnosis.empty());
}

// ---------------------------------------------------------------------
// Sweep cache CRC trailer.

bench::SweepResult
fakeSweep()
{
    bench::SweepResult s;
    for (int i = 0; i < 3; i++) {
        RunResult r;
        r.workload = "bfs";
        r.input = "in" + std::to_string(i);
        r.variant = Variant::Pipette;
        r.verified = true;
        r.finished = true;
        r.cycles = 1000 + static_cast<uint64_t>(i);
        r.instrs = 900 + static_cast<uint64_t>(i);
        r.ipc = 0.9;
        r.numCores = 1;
        s.runs.push_back(r);
    }
    return s;
}

TEST(SweepCacheCrc, RoundTripLoadsAndCorruptBytesInvalidate)
{
    const std::string path = tmpPath("sweep.csv");
    const uint64_t fp = 0x1234abcdull;
    bench::SweepResult ref = fakeSweep();
    bench::saveSweepCache(path, fp, ref);

    bench::SweepResult out;
    ASSERT_TRUE(bench::loadSweepCache(path, fp, &out));
    ASSERT_EQ(out.runs.size(), ref.runs.size());
    EXPECT_EQ(out.runs[1].cycles, ref.runs[1].cycles);

    // The file ends with the CRC trailer.
    std::vector<uint8_t> bytes = readAll(path);
    std::string text(bytes.begin(), bytes.end());
    EXPECT_NE(text.find("# crc32="), std::string::npos);

    // A flipped digit inside a row fails the CRC and invalidates.
    std::vector<uint8_t> flipped = bytes;
    size_t pos = text.find("1001");
    ASSERT_NE(pos, std::string::npos);
    flipped[pos] = '7';
    writeAll(path, flipped);
    bench::SweepResult bad;
    EXPECT_FALSE(bench::loadSweepCache(path, fp, &bad));
    EXPECT_TRUE(bad.runs.empty()) << "corrupt rows must not leak out";

    // Dropping the trailer (a truncated write) invalidates too.
    std::string cut = text.substr(0, text.find("# crc32="));
    writeAll(path,
             std::vector<uint8_t>(cut.begin(), cut.end()));
    bench::SweepResult trunc;
    EXPECT_FALSE(bench::loadSweepCache(path, fp, &trunc));

    // Wrong fingerprint never loads, CRC or not.
    bench::saveSweepCache(path, fp, ref);
    bench::SweepResult wrongFp;
    EXPECT_FALSE(bench::loadSweepCache(path, fp + 1, &wrongFp));

    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Fingerprint coverage of the new knobs.

TEST(ResilienceConfigTest, KnobsKeyTheFingerprintPathsDoNot)
{
    SystemConfig base;
    const uint64_t fp = configFingerprint(base);

    SystemConfig a = base, b = base, c = base, d = base, e = base;
    a.resilience.windowTimeoutMs = 100;
    b.resilience.interruptAtCheckpoint = 3;
    c.resilience.injectWindowFailures = 1;
    d.resilience.injectWindowHangMs = 5;
    e.sampling.maxCheckpoints = base.sampling.maxCheckpoints + 1;
    EXPECT_NE(configFingerprint(a), fp);
    EXPECT_NE(configFingerprint(b), fp);
    EXPECT_NE(configFingerprint(c), fp);
    EXPECT_NE(configFingerprint(d), fp);
    EXPECT_NE(configFingerprint(e), fp);

    // Output/input paths are resume identity, not simulated identity.
    SystemConfig p = base;
    p.resilience.checkpointOutPath = "/tmp/somewhere.ckpt";
    p.resilience.resumePath = "/tmp/elsewhere.ckpt";
    EXPECT_EQ(configFingerprint(p), fp);
}

} // namespace
} // namespace pipette
