// Unit tests for the branch predictor (gshare + BTB) and the event
// queue.

#include <gtest/gtest.h>

#include "core/bpred.h"
#include "sim/event_queue.h"

namespace pipette {
namespace {

CoreConfig
cfg()
{
    CoreConfig c;
    c.gshareBits = 10;
    c.btbEntries = 64;
    return c;
}

TEST(Bpred, LearnsAlwaysTaken)
{
    BranchPredictor bp(cfg(), 4);
    Addr pc = 17;
    // Train past history saturation so the final (all-taken) history
    // pattern's PHT entry has been reinforced.
    for (int i = 0; i < 80; i++) {
        uint64_t h = bp.history(0);
        bp.predictCond(0, pc);
        bp.updateCond(0, pc, true, h);
        bp.restoreHistory(0, h, true);
    }
    uint64_t h = bp.history(0);
    EXPECT_TRUE(bp.predictCond(0, pc));
    bp.restoreHistory(0, h, true);
}

TEST(Bpred, LearnsAlternatingWithHistory)
{
    BranchPredictor bp(cfg(), 1);
    Addr pc = 5;
    // Alternating taken/not-taken is perfectly predictable with
    // history once warmed up.
    bool taken = false;
    int correct = 0;
    for (int i = 0; i < 200; i++) {
        taken = !taken;
        uint64_t h = bp.history(0);
        bool pred = bp.predictCond(0, pc);
        if (i >= 100 && pred == taken)
            correct++;
        bp.updateCond(0, pc, taken, h);
        bp.restoreHistory(0, h, taken);
    }
    EXPECT_GT(correct, 95);
}

TEST(Bpred, ThreadsAreIndependent)
{
    BranchPredictor bp(cfg(), 2);
    EXPECT_EQ(bp.history(0), 0u);
    bp.predictCond(0, 9);
    EXPECT_EQ(bp.history(1), 0u); // thread 1 history untouched
}

TEST(Bpred, BtbStoresIndirectTargets)
{
    BranchPredictor bp(cfg(), 2);
    Addr tgt;
    EXPECT_FALSE(bp.predictIndirect(0, 42, &tgt));
    bp.updateIndirect(0, 42, 1234);
    ASSERT_TRUE(bp.predictIndirect(0, 42, &tgt));
    EXPECT_EQ(tgt, 1234u);
    // Another thread's same-PC entry is distinct.
    EXPECT_FALSE(bp.predictIndirect(1, 42, &tgt));
}

TEST(EventQueue, OrdersByCycleThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(10, [&] { order.push_back(3); }); // same cycle: FIFO
    eq.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CallbacksMayScheduleMore)
{
    EventQueue eq;
    int hits = 0;
    eq.schedule(1, [&] {
        hits++;
        eq.schedule(2, [&] { hits++; });
    });
    eq.runUntil(2);
    EXPECT_EQ(hits, 2);
}

TEST(EventQueue, PastSchedulingPanics)
{
    EventQueue eq;
    eq.runUntil(100);
    EXPECT_DEATH(eq.schedule(50, [] {}), "in the past");
}

TEST(EventQueue, PendingCount)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.schedule(6, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.runUntil(5);
    EXPECT_EQ(eq.pending(), 1u);
}

} // namespace
} // namespace pipette
