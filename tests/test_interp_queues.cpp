// Functional tests of the Pipette queue semantics in the golden-model
// interpreter: register-mapped enqueue/dequeue, blocking, control
// values and handlers, peek, skip_to_ctrl with producer redirection,
// reference accelerators, connectors, and deadlock detection.

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/interp.h"
#include "mem/sim_memory.h"

namespace pipette {
namespace {

// Register conventions used throughout these tests: r11 is mapped as a
// queue output on producers, r12 as a queue input on consumers.
constexpr Reg QOUT = R::r11;
constexpr Reg QIN = R::r12;

TEST(InterpQueues, ProducerConsumerThroughQueue)
{
    // Producer enqueues 1..100 (terminated by a CV); consumer sums.
    SimMemory mem;
    Addr out = 0x20000;

    Program prod("prod");
    {
        Asm a(&prod);
        auto loop = a.label();
        a.li(R::r1, 1);
        a.bind(loop);
        a.mov(QOUT, R::r1); // implicit enqueue via register mapping
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 101, loop);
        a.enqc(QOUT, R::zero); // CV value 0 = done
        a.halt();
        a.finalize();
    }

    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto loop = a.label();
        auto hdl = a.label("handler");
        a.li(R::r1, 0); // sum
        a.bind(loop);
        a.add(R::r1, R::r1, QIN); // implicit dequeue
        a.jmp(loop);
        a.bind(hdl);
        a.li(R::r2, out);
        a.sd(R::r1, R::r2, 0);
        a.halt();
        a.finalize();
        handler = cons.labels().at("handler");
    }

    MachineSpec spec;
    auto &tp = spec.addThread(0, 0, &prod);
    tp.queueMaps.push_back({QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons);
    tc.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);

    Interp in(spec, &mem);
    auto res = in.run();
    ASSERT_EQ(res.status, Interp::Status::Done);
    EXPECT_EQ(mem.read(out, 8), 5050u);
}

TEST(InterpQueues, BlockingBoundsQueueOccupancy)
{
    // Producer enqueues 100 values; consumer never dequeues -> producer
    // blocks at capacity and the run deadlocks (detected).
    Program prod("prod");
    {
        Asm a(&prod);
        auto loop = a.label();
        a.li(R::r1, 100);
        a.bind(loop);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, -1);
        a.bnei(R::r1, 0, loop);
        a.halt();
        a.finalize();
    }
    Program idle("idle");
    {
        Asm a(&idle);
        auto spin = a.label();
        a.bind(spin);
        a.jmp(spin); // never dequeues, never halts
        a.finalize();
    }
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    spec.addThread(0, 1, &idle).queueMaps.push_back(
        {QIN.idx, 0, QueueDir::In});
    SimMemory mem;
    Interp in(spec, &mem, /*cap=*/8);
    // The idle thread spins forever, so this hits the round limit rather
    // than deadlock; the producer must have stopped at exactly 8 values.
    auto res = in.run(10'000);
    EXPECT_EQ(res.status, Interp::Status::StepLimit);
    // Producer enqueued 8 then blocked: r1 = 100 - 8 = 92.
    EXPECT_EQ(in.reg(0, 1), 92u);
}

TEST(InterpQueues, TrueDeadlockIsDetected)
{
    // Consumer dequeues from an empty queue nobody feeds.
    Program cons("cons");
    {
        Asm a(&cons);
        a.mov(R::r1, QIN);
        a.halt();
        a.finalize();
    }
    MachineSpec spec;
    spec.addThread(0, 0, &cons).queueMaps.push_back(
        {QIN.idx, 0, QueueDir::In});
    SimMemory mem;
    Interp in(spec, &mem);
    EXPECT_EQ(in.run().status, Interp::Status::Deadlock);
}

TEST(InterpQueues, PeekDoesNotConsume)
{
    Program prod("prod");
    {
        Asm a(&prod);
        a.li(R::r1, 42);
        a.mov(QOUT, R::r1);
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto hdl = a.label("h");
        a.peek(R::r1, QIN);
        a.peek(R::r2, QIN); // same value again
        a.mov(R::r3, QIN);  // now consume it
        a.mov(R::r4, QIN);  // next entry is the CV -> handler
        a.halt();           // unreachable
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons);
    tc.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    SimMemory mem;
    Interp in(spec, &mem);
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_EQ(in.reg(1, 1), 42u);
    EXPECT_EQ(in.reg(1, 2), 42u);
    EXPECT_EQ(in.reg(1, 3), 42u);
    EXPECT_EQ(in.reg(1, 4), 0u); // r4 write never happened (trap instead)
}

TEST(InterpQueues, ControlValueDeliversPayloadQidAndReturnPc)
{
    Program prod("prod");
    {
        Asm a(&prod);
        a.li(R::r1, 7);
        a.enqc(QOUT, R::r1);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler, deqPc;
    {
        Asm a(&cons);
        auto hdl = a.label("h");
        deqPc = a.here();
        a.mov(R::r1, QIN); // traps immediately
        a.halt();
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 3, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons);
    tc.queueMaps.push_back({QIN.idx, 3, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    SimMemory mem;
    Interp in(spec, &mem);
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_EQ(in.reg(1, reg::CVVAL), 7u);
    EXPECT_EQ(in.reg(1, reg::CVQID), 3u);
    EXPECT_EQ(in.reg(1, reg::CVRET), deqPc);
}

TEST(InterpQueues, HandlerCanResumeWithJrCvret)
{
    // Producer sends 3 data values delimited by CVs carrying a tag; the
    // consumer accumulates data and tags separately, resuming the
    // interrupted dequeue with jr cvret.
    Program prod("prod");
    {
        Asm a(&prod);
        a.li(R::r1, 10);
        a.mov(QOUT, R::r1);
        a.li(R::r1, 20);
        a.mov(QOUT, R::r1);
        a.li(R::r2, 5);
        a.enqc(QOUT, R::r2); // tag 5
        a.li(R::r1, 30);
        a.mov(QOUT, R::r1);
        a.li(R::r2, 99);
        a.enqc(QOUT, R::r2); // terminator tag 99
        a.halt();
        a.finalize();
    }
    Addr handler;
    Program cons2("cons2");
    {
        Asm a(&cons2);
        auto loop = a.label();
        auto hdl = a.label("h");
        auto end = a.label("end");
        a.li(R::r1, 0);
        a.li(R::r2, 0);
        a.bind(loop);
        a.add(R::r1, R::r1, QIN);
        a.jmp(loop);
        a.bind(hdl);
        a.add(R::r2, R::r2, R::cvval);
        a.beqi(R::cvval, 99, end);
        a.jr(R::cvret);
        a.bind(end);
        a.halt();
        a.finalize();
        handler = cons2.labels().at("h");
    }
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons2);
    tc.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    SimMemory mem;
    Interp in(spec, &mem);
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_EQ(in.reg(1, 1), 60u);      // 10+20+30
    EXPECT_EQ(in.reg(1, 2), 104u);     // 5+99
}

TEST(InterpQueues, SkipToCtrlDiscardsAndRedirectsProducer)
{
    // Producer enqueues an endless stream of data values per "row" and
    // relies on the consumer to skip. Consumer takes the first value of
    // row 0, then skiptc; the producer's enqueue trap fires, its handler
    // enqueues a CV with the next row id, and the consumer resumes.
    Program prod("prod");
    Addr enqHandler;
    {
        Asm a(&prod);
        auto loop = a.label();
        auto hdl = a.label("eh");
        auto done = a.label("done");
        a.li(R::r1, 0);  // value counter
        a.li(R::r2, 0);  // row
        a.bind(loop);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.jmp(loop);
        a.bind(hdl);
        a.addi(R::r2, R::r2, 1); // next row
        a.enqc(QOUT, R::r2);
        a.beqi(R::r2, 2, done); // after row 1 is skipped, stop
        a.li(R::r1, 1000);      // row 1 values start at 1000
        a.jmp(loop);
        a.bind(done);
        a.halt();
        a.finalize();
        enqHandler = prod.labels().at("eh");
    }
    Program cons("cons");
    {
        Asm a(&cons);
        a.mov(R::r1, QIN);       // first value of row 0 (0)
        a.skiptc(R::r2, QIN);    // discard rest, get CV (row 1)
        a.mov(R::r3, QIN);       // first value of row 1 (1000)
        a.skiptc(R::r4, QIN);    // CV (row 2)
        a.halt();
        a.finalize();
    }
    MachineSpec spec;
    auto &tp = spec.addThread(0, 0, &prod);
    tp.queueMaps.push_back({QOUT.idx, 0, QueueDir::Out});
    tp.enqHandler = static_cast<int64_t>(enqHandler);
    spec.addThread(0, 1, &cons).queueMaps.push_back(
        {QIN.idx, 0, QueueDir::In});
    SimMemory mem;
    Interp in(spec, &mem, /*cap=*/4);
    auto res = in.run();
    ASSERT_EQ(res.status, Interp::Status::Done);
    EXPECT_EQ(in.reg(1, 1), 0u);
    EXPECT_EQ(in.reg(1, 2), 1u);    // row-1 CV
    EXPECT_EQ(in.reg(1, 3), 1000u); // first value of row 1
    EXPECT_EQ(in.reg(1, 4), 2u);    // row-2 CV
}

TEST(InterpQueues, RaIndirectMode)
{
    // Thread enqueues indices; RA fetches A[i]; consumer sums.
    SimMemory mem;
    Addr arr = 0x80000;
    for (uint64_t i = 0; i < 64; i++)
        mem.write(arr + 8 * i, 8, i * i);

    Program prod("prod");
    {
        Asm a(&prod);
        auto loop = a.label();
        a.li(R::r1, 0);
        a.bind(loop);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 64, loop);
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, 0);
        a.bind(loop);
        a.add(R::r1, R::r1, QIN);
        a.jmp(loop);
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons);
    tc.queueMaps.push_back({QIN.idx, 1, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    RaSpec ra;
    ra.core = 0;
    ra.inQueue = 0;
    ra.outQueue = 1;
    ra.base = arr;
    ra.elemBytes = 8;
    ra.mode = RaMode::Indirect;
    spec.ras.push_back(ra);

    Interp in(spec, &mem);
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    uint64_t expect = 0;
    for (uint64_t i = 0; i < 64; i++)
        expect += i * i;
    EXPECT_EQ(in.reg(1, 1), expect);
}

TEST(InterpQueues, RaScanMode)
{
    // Thread enqueues (start, end) pairs; RA streams A[start..end).
    SimMemory mem;
    Addr arr = 0x90000;
    for (uint64_t i = 0; i < 100; i++)
        mem.write(arr + 4 * i, 4, 1000 + i);

    Program prod("prod");
    {
        Asm a(&prod);
        a.li(R::r1, 5);
        a.mov(QOUT, R::r1); // start
        a.li(R::r1, 8);
        a.mov(QOUT, R::r1); // end -> elements 5,6,7
        a.li(R::r1, 20);
        a.mov(QOUT, R::r1);
        a.li(R::r1, 20);
        a.mov(QOUT, R::r1); // empty range -> nothing
        a.li(R::r1, 50);
        a.mov(QOUT, R::r1);
        a.li(R::r1, 51);
        a.mov(QOUT, R::r1); // element 50
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, 0); // sum
        a.li(R::r2, 0); // count
        a.bind(loop);
        a.add(R::r1, R::r1, QIN);
        a.addi(R::r2, R::r2, 1);
        a.jmp(loop);
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons);
    tc.queueMaps.push_back({QIN.idx, 1, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    RaSpec ra;
    ra.core = 0;
    ra.inQueue = 0;
    ra.outQueue = 1;
    ra.base = arr;
    ra.elemBytes = 4;
    ra.mode = RaMode::Scan;
    spec.ras.push_back(ra);

    Interp in(spec, &mem);
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_EQ(in.reg(1, 2), 4u); // 3 + 0 + 1 elements
    EXPECT_EQ(in.reg(1, 1), (1005u + 1006 + 1007) + 1050);
}

TEST(InterpQueues, ConnectorBridgesCores)
{
    // Producer on core 0, consumer on core 1, joined by a connector.
    Program prod("prod");
    {
        Asm a(&prod);
        auto loop = a.label();
        a.li(R::r1, 1);
        a.bind(loop);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 33, loop);
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, 0);
        a.bind(loop);
        a.add(R::r1, R::r1, QIN);
        a.jmp(loop);
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(1, 0, &cons);
    tc.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    spec.connectors.push_back({0, 0, 1, 0});

    SimMemory mem;
    Interp in(spec, &mem);
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_EQ(in.reg(1, 1), 32u * 33 / 2);
}

TEST(InterpQueues, CvPassesThroughRa)
{
    // CVs interleaved with data must come out of an RA in order.
    SimMemory mem;
    Addr arr = 0xa0000;
    for (uint64_t i = 0; i < 16; i++)
        mem.write(arr + 8 * i, 8, 100 + i);

    Program prod("prod");
    {
        Asm a(&prod);
        a.li(R::r1, 3);
        a.mov(QOUT, R::r1); // A[3] = 103
        a.li(R::r2, 55);
        a.enqc(QOUT, R::r2); // CV(55)
        a.li(R::r1, 4);
        a.mov(QOUT, R::r1); // A[4] = 104
        a.li(R::r2, 66);
        a.enqc(QOUT, R::r2); // CV(66) terminator
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto hdl = a.label("h");
        auto end = a.label("end");
        a.mov(R::r1, QIN); // 103
        a.mov(R::r2, QIN); // traps on CV(55), then resumes here via jr
        a.halt();          // reached only after second value... see below
        a.bind(hdl);
        a.beqi(R::cvval, 66, end);
        a.mov(R::r3, R::cvval) /* 55 */;
        a.jr(R::cvret); // retry the dequeue -> gets 104 into r2
        a.bind(end);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons);
    tc.queueMaps.push_back({QIN.idx, 1, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    RaSpec ra{0, 0, 1, arr, 8, RaMode::Indirect};
    spec.ras.push_back(ra);

    Interp in(spec, &mem);
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_EQ(in.reg(1, 1), 103u);
    EXPECT_EQ(in.reg(1, 3), 55u);
    EXPECT_EQ(in.reg(1, 2), 104u);
}

TEST(InterpQueues, DequeueOfCvWithoutHandlerPanics)
{
    Program prod("prod");
    {
        Asm a(&prod);
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    {
        Asm a(&cons);
        a.mov(R::r1, QIN);
        a.halt();
        a.finalize();
    }
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    spec.addThread(0, 1, &cons).queueMaps.push_back(
        {QIN.idx, 0, QueueDir::In});
    SimMemory mem;
    Interp in(spec, &mem);
    EXPECT_DEATH(in.run(), "no handler");
}

} // namespace
} // namespace pipette
