// Functional-interpreter tests: scalar ISA semantics, control flow,
// memory, atomics, and multi-thread interleaving (no queues; queue
// semantics are covered in test_interp_queues.cpp).

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/interp.h"
#include "mem/sim_memory.h"

namespace pipette {
namespace {

/** Run a single-thread program to completion and return the interp. */
struct SingleRun
{
    SimMemory mem;
    MachineSpec spec;
    std::unique_ptr<Interp> interp;
    Interp::Result result;

    explicit SingleRun(const Program *p,
                       std::array<uint64_t, NUM_ARCH_REGS> init = {})
    {
        spec.addThread(0, 0, p).initRegs = init;
        interp = std::make_unique<Interp>(spec, &mem);
        result = interp->run();
    }
};

TEST(Interp, ArithmeticLoop)
{
    Program p("sum");
    Asm a(&p);
    auto loop = a.label();
    a.li(R::r1, 0);  // sum
    a.li(R::r2, 1);  // i
    a.bind(loop);
    a.add(R::r1, R::r1, R::r2);
    a.addi(R::r2, R::r2, 1);
    a.blti(R::r2, 11, loop);
    a.halt();
    a.finalize();

    SingleRun r(&p);
    EXPECT_EQ(r.result.status, Interp::Status::Done);
    EXPECT_EQ(r.interp->reg(0, 1), 55u);
}

TEST(Interp, LoadsAndStoresAllSizes)
{
    Program p("mem");
    Asm a(&p);
    a.li(R::r1, 0x20000);
    a.li(R::r2, 0x1122334455667788ull);
    a.sd(R::r2, R::r1, 0);
    a.ld(R::r3, R::r1, 0);
    a.lw(R::r4, R::r1, 0);
    a.lh(R::r5, R::r1, 0);
    a.lb(R::r6, R::r1, 0);
    a.sb(R::r2, R::r1, 32);
    a.lb(R::r7, R::r1, 32);
    a.halt();
    a.finalize();

    SingleRun r(&p);
    EXPECT_EQ(r.interp->reg(0, 3), 0x1122334455667788ull);
    EXPECT_EQ(r.interp->reg(0, 4), 0x55667788u);
    EXPECT_EQ(r.interp->reg(0, 5), 0x7788u);
    EXPECT_EQ(r.interp->reg(0, 6), 0x88u);
    EXPECT_EQ(r.interp->reg(0, 7), 0x88u);
}

TEST(Interp, UnmappedReadsReturnZero)
{
    Program p("unmapped");
    Asm a(&p);
    a.li(R::r1, 0xdead0000);
    a.ld(R::r2, R::r1, 0);
    a.halt();
    a.finalize();
    SingleRun r(&p);
    EXPECT_EQ(r.interp->reg(0, 2), 0u);
}

TEST(Interp, JalAndJr)
{
    Program p("call");
    Asm a(&p);
    auto fn = a.label("fn");
    auto done = a.label("done");
    a.li(R::r1, 1);
    a.jal(R::r10, fn);
    a.li(R::r2, 3); // executed after return
    a.jmp(done);
    a.bind(fn);
    a.addi(R::r1, R::r1, 10);
    a.jr(R::r10);
    a.bind(done);
    a.halt();
    a.finalize();

    SingleRun r(&p);
    EXPECT_EQ(r.result.status, Interp::Status::Done);
    EXPECT_EQ(r.interp->reg(0, 1), 11u);
    EXPECT_EQ(r.interp->reg(0, 2), 3u);
}

TEST(Interp, InitRegsArePassedThrough)
{
    Program p("args");
    Asm a(&p);
    a.add(R::r3, R::r1, R::r2);
    a.halt();
    a.finalize();
    std::array<uint64_t, NUM_ARCH_REGS> init = {};
    init[1] = 40;
    init[2] = 2;
    SingleRun r(&p, init);
    EXPECT_EQ(r.interp->reg(0, 3), 42u);
}

TEST(Interp, ZeroRegisterIsAlwaysZero)
{
    Program p("zero");
    Asm a(&p);
    a.addi(R::zero, R::zero, 5); // write to r0 is discarded
    a.add(R::r1, R::zero, R::zero);
    a.halt();
    a.finalize();
    SingleRun r(&p);
    EXPECT_EQ(r.interp->reg(0, 0), 0u);
    EXPECT_EQ(r.interp->reg(0, 1), 0u);
}

TEST(Interp, AtomicsAreSequentiallyConsistentAcrossThreads)
{
    // Two threads each atomically add 1 to a shared counter 1000 times.
    SimMemory mem;
    Addr counter = 0x30000;
    mem.write(counter, 8, 0);

    Program p("incr");
    Asm a(&p);
    auto loop = a.label();
    a.li(R::r1, counter);
    a.li(R::r2, 1000);
    a.li(R::r3, 1);
    a.bind(loop);
    a.amoadd(R::zero, R::r1, R::r3);
    a.addi(R::r2, R::r2, -1);
    a.bnei(R::r2, 0, loop);
    a.halt();
    a.finalize();

    MachineSpec spec;
    spec.addThread(0, 0, &p);
    spec.addThread(0, 1, &p);
    Interp in(spec, &mem);
    auto res = in.run();
    EXPECT_EQ(res.status, Interp::Status::Done);
    EXPECT_EQ(mem.read(counter, 8), 2000u);
}

TEST(Interp, CasClaimsExactlyOnce)
{
    // N threads race to CAS a flag from 0 to their id+1; exactly one wins
    // and every loser observes the winner's value.
    SimMemory mem;
    Addr flag = 0x40000;

    auto makeProg = [&](uint64_t id) {
        auto p = std::make_unique<Program>("cas" + std::to_string(id));
        Asm a(p.get());
        a.li(R::r1, flag);
        a.li(R::r2, id + 1); // new value
        a.li(R::r3, 0);      // expected (in rd for amocas)
        a.mov(R::r4, R::r3);
        a.amocas(R::r4, R::r1, R::r2); // r4 = old
        a.halt();
        a.finalize();
        return p;
    };

    std::vector<std::unique_ptr<Program>> progs;
    MachineSpec spec;
    for (uint64_t t = 0; t < 4; t++) {
        progs.push_back(makeProg(t));
        spec.addThread(0, static_cast<ThreadId>(t), progs.back().get());
    }
    Interp in(spec, &mem);
    ASSERT_EQ(in.run().status, Interp::Status::Done);

    uint64_t final = mem.read(flag, 8);
    ASSERT_GE(final, 1u);
    ASSERT_LE(final, 4u);
    int winners = 0;
    for (size_t t = 0; t < 4; t++) {
        if (in.reg(t, 4) == 0)
            winners++; // saw 0 -> its CAS succeeded
    }
    EXPECT_EQ(winners, 1);
    EXPECT_EQ(final, 1u); // round-robin: thread 0 always wins first
}

TEST(Interp, SpinBarrierBetweenThreads)
{
    // Thread 0 stores a value then sets a flag; thread 1 spins on the
    // flag and then reads the value.
    SimMemory mem;
    Addr data = 0x50000, flagAddr = 0x50008;

    Program p0("producer");
    {
        Asm a(&p0);
        a.li(R::r1, data);
        a.li(R::r2, 777);
        a.sd(R::r2, R::r1, 0);
        a.li(R::r3, 1);
        a.sd(R::r3, R::r1, 8);
        a.halt();
        a.finalize();
    }
    Program p1("consumer");
    {
        Asm a(&p1);
        auto spin = a.label();
        a.li(R::r1, flagAddr);
        a.bind(spin);
        a.ld(R::r2, R::r1, 0);
        a.beqi(R::r2, 0, spin);
        a.ld(R::r3, R::r1, -8);
        a.halt();
        a.finalize();
    }

    MachineSpec spec;
    spec.addThread(0, 0, &p0);
    spec.addThread(0, 1, &p1);
    Interp in(spec, &mem);
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_EQ(in.reg(1, 3), 777u);
}

TEST(Interp, InstrCountsAreTracked)
{
    Program p("count");
    Asm a(&p);
    a.li(R::r1, 1);
    a.li(R::r2, 2);
    a.halt();
    a.finalize();
    SingleRun r(&p);
    EXPECT_EQ(r.interp->threadInstrs(0), 3u);
    EXPECT_EQ(r.result.instrs, 3u);
}

} // namespace
} // namespace pipette
