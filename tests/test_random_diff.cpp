// Randomized differential testing: generate random programs and check
// that the cycle-level OOO core and the golden-model interpreter
// produce bit-identical architectural state (registers and memory).
// This exercises speculation, squash recovery, store forwarding,
// fences, and queue machinery far beyond the hand-written tests.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/assembler.h"
#include "isa/interp.h"
#include "sim/rng.h"

namespace pipette {
namespace {

constexpr Addr REGION = 0x200000;
constexpr uint32_t REGION_WORDS = 64;

/**
 * Random single-thread program: an outer loop whose body mixes ALU ops,
 * loads/stores within a small region, hard-to-predict forward branches,
 * and occasional fences/mul/div. Always terminates (counted loop).
 */
void
genRandomBody(Asm &a, Rng &rng, int bodyLen)
{
    auto randReg = [&] {
        return Reg{static_cast<ArchRegId>(rng.uniformInt(3, 10))};
    };
    for (int i = 0; i < bodyLen; i++) {
        switch (rng.uniformInt(0, 11)) {
          case 0:
            a.add(randReg(), randReg(), randReg());
            break;
          case 1:
            a.sub(randReg(), randReg(), randReg());
            break;
          case 2:
            a.xor_(randReg(), randReg(), randReg());
            break;
          case 3:
            a.slli(randReg(), randReg(),
                   static_cast<int64_t>(rng.uniformInt(0, 7)));
            break;
          case 4:
            a.mul(randReg(), randReg(), randReg());
            break;
          case 5:
            a.divu(randReg(), randReg(), randReg());
            break;
          case 6: // load from the region
            a.ld(randReg(), R::r2,
                 static_cast<int64_t>(rng.uniformInt(0, REGION_WORDS - 1))
                     * 8);
            break;
          case 7: // store into the region
            a.sd(randReg(), R::r2,
                 static_cast<int64_t>(rng.uniformInt(0, REGION_WORDS - 1))
                     * 8);
            break;
          case 8: { // data-dependent forward branch over 1-2 instrs
            auto skip = a.label();
            a.andi(R::r10, randReg(),
                   static_cast<int64_t>(rng.uniformInt(1, 7)));
            a.bnei(R::r10, 0, skip);
            a.addi(randReg(), randReg(),
                   static_cast<int64_t>(rng.uniformInt(0, 99)));
            if (rng.bernoulli(0.5))
                a.xor_(randReg(), randReg(), randReg());
            a.bind(skip);
            break;
          }
          case 9:
            a.sltu(randReg(), randReg(), randReg());
            break;
          case 10:
            a.fence();
            break;
          default:
            a.addi(randReg(), randReg(),
                   static_cast<int64_t>(rng.uniformInt(0, 255)));
            break;
        }
    }
}

std::unique_ptr<Program>
genRandomProgram(uint64_t seed)
{
    Rng rng(seed);
    auto p = std::make_unique<Program>("rand" + std::to_string(seed));
    Asm a(p.get());
    auto loop = a.label();
    a.li(R::r1, rng.uniformInt(10, 40)); // iterations
    a.li(R::r2, REGION);
    for (ArchRegId r = 3; r <= 10; r++)
        a.li(Reg{r}, rng.next() & 0xFFFF);
    a.bind(loop);
    genRandomBody(a, rng, static_cast<int>(rng.uniformInt(8, 24)));
    a.addi(R::r1, R::r1, -1);
    a.bnei(R::r1, 0, loop);
    a.halt();
    a.finalize();
    return p;
}

class RandomDiff : public testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomDiff, CoreMatchesInterpreter)
{
    auto prog = genRandomProgram(GetParam());

    MachineSpec spec;
    spec.addThread(0, 0, prog.get());

    // Golden model.
    SimMemory imem;
    for (uint32_t w = 0; w < REGION_WORDS; w++)
        imem.write(REGION + 8 * w, 8, w * 0x1234567ull);
    Interp in(spec, &imem);
    ASSERT_EQ(in.run().status, Interp::Status::Done);

    // Timing model.
    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    System sys(cfg);
    for (uint32_t w = 0; w < REGION_WORDS; w++)
        sys.memory().write(REGION + 8 * w, 8, w * 0x1234567ull);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);

    for (ArchRegId r = 1; r <= 10; r++)
        EXPECT_EQ(sys.core(0).readArchReg(0, r), in.reg(0, r))
            << "reg r" << static_cast<int>(r) << " seed " << GetParam();
    for (uint32_t w = 0; w < REGION_WORDS; w++)
        EXPECT_EQ(sys.memory().read(REGION + 8 * w, 8),
                  imem.read(REGION + 8 * w, 8))
            << "word " << w << " seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDiff,
                         testing::Range<uint64_t>(1, 25));

// ------------------------------------------------- random pipelines

/**
 * Random two-stage pipeline: the producer streams g(i) values through a
 * queue of random capacity (optionally through an indirect RA), the
 * consumer folds them with a random operation. Differential against the
 * interpreter plus a host-computed expectation.
 */
class RandomPipeline : public testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomPipeline, CoreMatchesInterpreterAndHost)
{
    uint64_t seed = GetParam();
    Rng rng(seed);
    uint32_t n = static_cast<uint32_t>(rng.uniformInt(50, 400));
    uint32_t cap = static_cast<uint32_t>(rng.uniformInt(2, 32));
    bool useRa = rng.bernoulli(0.5);
    uint64_t mult = rng.uniformInt(1, 9);
    int foldOp = static_cast<int>(rng.uniformInt(0, 2));

    Addr arr = 0x300000;

    Program prod("prod");
    {
        Asm a(&prod);
        auto loop = a.label();
        a.li(R::r1, 0);
        a.li(R::r2, mult);
        a.bind(loop);
        a.mul(R::r3, R::r1, R::r2);
        a.andi(R::r3, R::r3, 0xFF); // index within the array
        a.mov(Reg{11}, R::r3);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, n, loop);
        a.enqc(Reg{11}, R::zero);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    Addr handler;
    {
        Asm a(&cons);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, 0);
        a.bind(loop);
        switch (foldOp) {
          case 0:
            a.add(R::r1, R::r1, Reg{12});
            break;
          case 1:
            a.xor_(R::r1, R::r1, Reg{12});
            break;
          default:
            a.sub(R::r1, R::r1, Reg{12});
            break;
        }
        a.jmp(loop);
        a.bind(hdl);
        a.halt();
        a.finalize();
        handler = cons.labels().at("h");
    }

    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {11, 0, QueueDir::Out});
    auto &tc = spec.addThread(0, 1, &cons);
    tc.deqHandler = static_cast<int64_t>(handler);
    if (useRa) {
        tc.queueMaps.push_back({12, 1, QueueDir::In});
        spec.ras.push_back({0, 0, 1, arr, 8, RaMode::Indirect});
    } else {
        tc.queueMaps.push_back({12, 0, QueueDir::In});
    }
    spec.queueCaps.push_back({0, 0, cap});

    auto fillMem = [&](SimMemory &m) {
        for (uint32_t i = 0; i < 256; i++)
            m.write(arr + 8 * i, 8, i * 77 + 5);
    };

    // Host expectation.
    uint64_t expect = 0;
    for (uint32_t i = 0; i < n; i++) {
        uint64_t v = (i * mult) & 0xFF;
        if (useRa)
            v = v * 77 + 5;
        switch (foldOp) {
          case 0: expect += v; break;
          case 1: expect ^= v; break;
          default: expect -= v; break;
        }
    }

    SimMemory imem;
    fillMem(imem);
    Interp in(spec, &imem, cap);
    ASSERT_EQ(in.run().status, Interp::Status::Done) << "seed " << seed;
    EXPECT_EQ(in.reg(1, 1), expect) << "seed " << seed;

    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    System sys(cfg);
    fillMem(sys.memory());
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished) << "seed " << seed;
    EXPECT_EQ(sys.core(0).readArchReg(1, 1), expect) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipeline,
                         testing::Range<uint64_t>(100, 120));

} // namespace
} // namespace pipette
