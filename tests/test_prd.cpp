// PageRank-Delta workload tests across all variants.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/interp.h"
#include "workloads/prd.h"

namespace pipette {
namespace {

struct PrdCase
{
    const char *graphKind;
    Variant variant;
};

std::string
caseName(const testing::TestParamInfo<PrdCase> &info)
{
    std::string s = std::string(info.param.graphKind) + "_" +
                    variantName(info.param.variant);
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

Graph
makeGraph(const std::string &kind)
{
    if (kind == "grid")
        return makeGridGraph(16, 16, 51);
    if (kind == "rmat")
        return makeRmatGraph(256, 1024, 53);
    return makeUniformGraph(300, 4.0, 57);
}

class PrdVariants : public testing::TestWithParam<PrdCase>
{
};

TEST_P(PrdVariants, MatchesReference)
{
    const PrdCase &c = GetParam();
    Graph g = makeGraph(c.graphKind);

    SystemConfig cfg;
    cfg.numCores = c.variant == Variant::Streaming ? 4 : 1;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 300'000'000;
    System sys(cfg);

    PrdParams params;
    params.maxIters = 6;
    PrdWorkload wl(&g, params);
    BuildContext ctx(&sys);
    wl.build(ctx, c.variant);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << sys.core(0).debugString();
    EXPECT_TRUE(wl.verify(sys));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, PrdVariants,
    testing::Values(PrdCase{"grid", Variant::Serial},
                    PrdCase{"grid", Variant::DataParallel},
                    PrdCase{"grid", Variant::Pipette},
                    PrdCase{"grid", Variant::PipetteNoRa},
                    PrdCase{"grid", Variant::Streaming},
                    PrdCase{"rmat", Variant::Serial},
                    PrdCase{"rmat", Variant::DataParallel},
                    PrdCase{"rmat", Variant::Pipette},
                    PrdCase{"rmat", Variant::PipetteNoRa},
                    PrdCase{"uniform", Variant::Pipette},
                    PrdCase{"uniform", Variant::Streaming}),
    caseName);

TEST(PrdInterp, PipetteFunctionallyCorrect)
{
    Graph g = makeRmatGraph(200, 600, 61);
    SystemConfig cfg;
    System sys(cfg);
    PrdParams params;
    params.maxIters = 5;
    PrdWorkload wl(&g, params);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Pipette);
    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

TEST(PrdInterp, DataParallelFunctionallyCorrect)
{
    Graph g = makeUniformGraph(250, 3.0, 67);
    SystemConfig cfg;
    System sys(cfg);
    PrdParams params;
    params.maxIters = 5;
    PrdWorkload wl(&g, params);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::DataParallel);
    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

TEST(PrdInterp, NoRaFunctionallyCorrect)
{
    Graph g = makeGridGraph(12, 12, 71);
    SystemConfig cfg;
    System sys(cfg);
    PrdWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::PipetteNoRa);
    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

} // namespace
} // namespace pipette
