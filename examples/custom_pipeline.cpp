/**
 * @file
 * Building a custom pipeline-parallel kernel with the Pipette API: a
 * sparse histogram. Stage 1 streams an index array (keys[i]), a
 * reference accelerator fetches the current count of each key's bucket,
 * and the update stage increments buckets -- the same fetch-ahead /
 * re-check idiom BFS uses for distances (paper Sec. III-C).
 *
 * Also shows cross-core queues: the same pipeline is run a second time
 * with its stages on two different cores joined by connectors.
 *
 * Build: cmake --build build && ./build/examples/custom_pipeline
 */

#include <cstdio>
#include <vector>

#include "core/system.h"
#include "isa/assembler.h"
#include "sim/rng.h"

using namespace pipette;

namespace {
constexpr Reg QOUT{11};
constexpr Reg QIN{12};

struct Pipeline
{
    Program feed{"feed"};
    Program update{"update"};
    Addr updateHandler = 0;
};

/** Emit both stage programs (shared by the 1-core and 2-core runs). */
Pipeline
buildPrograms(uint64_t n, Addr keys, Addr buckets)
{
    Pipeline pl;
    {
        Asm a(&pl.feed);
        auto loop = a.label();
        a.li(R::r1, keys);
        a.li(R::r2, 0);
        a.bind(loop);
        a.lw(QOUT, R::r1, 0); // the key load itself enqueues
        a.addi(R::r1, R::r1, 4);
        a.addi(R::r2, R::r2, 1);
        a.blti(R::r2, static_cast<int64_t>(n), loop);
        a.enqc(QOUT, R::zero);
        a.halt();
        a.finalize();
    }
    {
        Asm a(&pl.update);
        auto loop = a.label();
        auto hdl = a.label("h");
        a.li(R::r1, buckets);
        a.bind(loop);
        a.mov(R::r2, QIN); // key (from the RA's key/value stream)
        a.mov(R::r3, QIN); // fetched count (may be stale: fetch-ahead)
        a.slli(R::r4, R::r2, 3);
        a.add(R::r4, R::r1, R::r4);
        a.ld(R::r3, R::r4, 0); // re-check: reload the current count
        a.addi(R::r3, R::r3, 1);
        a.sd(R::r3, R::r4, 0);
        a.jmp(loop);
        a.bind(hdl);
        a.halt();
        a.finalize();
        pl.updateHandler = pl.update.labels().at("h");
    }
    return pl;
}
} // namespace

int
main()
{
    const uint64_t n = 20000, nBuckets = 4096;

    auto runOnce = [&](bool twoCores) -> Cycle {
        SystemConfig cfg;
        cfg.numCores = twoCores ? 2 : 1;
        System sys(cfg);
        SimAllocator alloc(0x100000);
        Addr keys = alloc.alloc32(n);
        Addr buckets = alloc.alloc64(nBuckets);
        Rng rng(3);
        std::vector<uint64_t> expect(nBuckets, 0);
        for (uint64_t i = 0; i < n; i++) {
            auto k = static_cast<uint32_t>(rng.uniformInt(0, nBuckets - 1));
            sys.memory().write(keys + 4 * i, 4, k);
            expect[k]++;
        }
        sys.memory().fill(buckets, 8 * nBuckets, 0);

        static Pipeline pl; // programs must outlive the run
        pl = buildPrograms(n, keys, buckets);

        MachineSpec spec;
        ThreadSpec &tf = spec.addThread(0, 0, &pl.feed);
        tf.queueMaps.push_back({QOUT.idx, 0, QueueDir::Out});
        CoreId updCore = twoCores ? 1 : 0;
        ThreadSpec &tu =
            spec.addThread(updCore, twoCores ? 0 : 1, &pl.update);
        tu.deqHandler = static_cast<int64_t>(pl.updateHandler);

        if (twoCores) {
            // RA on core 0; its output crosses to core 1 via a connector.
            spec.ras.push_back({0, 0, 1, buckets, 8, RaMode::IndirectKV});
            tu.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
            spec.connectors.push_back({0, 1, 1, 0});
        } else {
            spec.ras.push_back({0, 0, 1, buckets, 8, RaMode::IndirectKV});
            tu.queueMaps.push_back({QIN.idx, 1, QueueDir::In});
        }

        sys.configure(spec);
        auto res = sys.run();
        if (!res.finished) {
            std::printf("did not finish!\n");
            std::exit(1);
        }
        for (uint64_t b = 0; b < nBuckets; b++) {
            if (sys.memory().read(buckets + 8 * b, 8) != expect[b]) {
                std::printf("bucket %llu mismatch!\n",
                            (unsigned long long)b);
                std::exit(1);
            }
        }
        return res.cycles;
    };

    Cycle one = runOnce(false);
    Cycle two = runOnce(true);
    std::printf("sparse histogram over %llu keys, %llu buckets: "
                "verified on both placements\n",
                (unsigned long long)n, (unsigned long long)nBuckets);
    std::printf("  1 core  (SMT stages):        %llu cycles\n",
                (unsigned long long)one);
    std::printf("  2 cores (connector between): %llu cycles\n",
                (unsigned long long)two);
    std::printf("\nqueues are latency-insensitive interfaces: the same "
                "programs run unchanged whether the stages share a core "
                "or communicate through the on-chip network.\n");
    return 0;
}
