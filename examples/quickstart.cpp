/**
 * @file
 * Quickstart: build a two-stage Pipette pipeline by hand.
 *
 * A producer thread streams indices into a queue; a reference
 * accelerator turns each index i into data[i]; a consumer thread
 * accumulates the values. Control values signal the end of the stream.
 *
 * This demonstrates the core public API:
 *   - writing mini-ISA programs with the Asm builder,
 *   - register-mapped enqueue/dequeue (no explicit queue instructions),
 *   - control values + dequeue control handlers,
 *   - configuring a reference accelerator,
 *   - running on the cycle-level System and reading results back.
 *
 * Build: cmake --build build && ./build/examples/quickstart
 */

#include <cstdio>

#include "core/system.h"
#include "isa/assembler.h"

using namespace pipette;

int
main()
{
    // ---- 1. A simulated system: one 4-thread SMT core (Table IV).
    SystemConfig cfg;
    System sys(cfg);

    // ---- 2. Simulated data: an array of 4096 values.
    const uint64_t n = 4096;
    SimAllocator alloc(0x100000);
    Addr data = alloc.alloc64(n);
    for (uint64_t i = 0; i < n; i++)
        sys.memory().write(data + 8 * i, 8, i * 7 + 1);
    Addr resultAddr = alloc.alloc(8);

    // ---- 3. Producer: stream indices, then a control value.
    // Writing r11 enqueues implicitly; the loop body has no explicit
    // queue instructions (paper Fig. 3(d)).
    Program producer("producer");
    {
        Asm a(&producer);
        auto loop = a.label();
        a.li(R::r1, 0);
        a.bind(loop);
        a.mov(Reg{11}, R::r1); // enqueue i
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, static_cast<int64_t>(n), loop);
        a.enqc(Reg{11}, R::zero); // end-of-stream control value
        a.halt();
        a.finalize();
    }

    // ---- 4. Consumer: accumulate until the CV fires the handler.
    Program consumer("consumer");
    Addr handler;
    {
        Asm a(&consumer);
        auto loop = a.label();
        auto hdl = a.label("handler");
        a.li(R::r1, 0);
        a.bind(loop);
        a.add(R::r1, R::r1, Reg{12}); // reading r12 dequeues implicitly
        a.jmp(loop);
        a.bind(hdl); // jumped to when a CV reaches the queue head
        a.li(R::r2, resultAddr);
        a.sd(R::r1, R::r2, 0);
        a.halt();
        a.finalize();
        handler = consumer.labels().at("handler");
    }

    // ---- 5. Wire it up: producer -> q0 -> RA(indirect) -> q1 -> consumer.
    MachineSpec spec;
    ThreadSpec &tp = spec.addThread(/*core=*/0, /*tid=*/0, &producer);
    tp.queueMaps.push_back({11, /*queue=*/0, QueueDir::Out});
    ThreadSpec &tc = spec.addThread(0, 1, &consumer);
    tc.queueMaps.push_back({12, /*queue=*/1, QueueDir::In});
    tc.deqHandler = static_cast<int64_t>(handler);
    spec.ras.push_back({/*core=*/0, /*in=*/0, /*out=*/1, data,
                        /*elemBytes=*/8, RaMode::Indirect});

    sys.configure(spec);
    auto res = sys.run();

    // ---- 6. Results.
    uint64_t expect = 0;
    for (uint64_t i = 0; i < n; i++)
        expect += i * 7 + 1;
    uint64_t got = sys.memory().read(resultAddr, 8);
    std::printf("finished=%d cycles=%llu instrs=%llu ipc=%.2f\n",
                res.finished, static_cast<unsigned long long>(res.cycles),
                static_cast<unsigned long long>(res.instrs),
                static_cast<double>(res.instrs) / res.cycles);
    std::printf("sum = %llu (expected %llu) -> %s\n",
                static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(expect),
                got == expect ? "OK" : "MISMATCH");
    std::printf("enqueues=%llu dequeues=%llu cvTraps=%llu raAccesses=%llu\n",
                (unsigned long long)sys.core(0).stats().enqueues,
                (unsigned long long)sys.core(0).stats().dequeues,
                (unsigned long long)sys.core(0).stats().cvTraps,
                (unsigned long long)sys.core(0).stats().raAccesses);
    return got == expect ? 0 : 1;
}
