/**
 * @file
 * SpMM and consumer->producer coordination: runs the inner-product
 * sparse matrix multiply on an asymmetric pair (long rows of A, short
 * columns of B) so the merge-intersect stage constantly exhausts the
 * column side early and issues skip_to_ctrl on the row stream --
 * redirecting the rows producer through its enqueue control handler,
 * exactly the paper's Fig. 5 scenario.
 *
 * Build: cmake --build build && ./build/examples/spmm_skip
 */

#include <cstdio>

#include "harness/runner.h"
#include "workloads/spmm.h"

using namespace pipette;

int
main()
{
    SparseMatrix A = makeSparseMatrix(1024, 40.0, 11); // long rows
    SparseMatrix B = makeSparseMatrix(1024, 3.0, 12);  // short columns
    SparseMatrix Bt = B.transpose();
    std::printf("SpMM: A %ux%u (%.1f nnz/row) x B (%.1f nnz/col), "
                "8 columns per row\n\n",
                A.n, A.n, A.avgNnzPerRow(), B.avgNnzPerRow());

    SystemConfig cfg;
    Runner runner(cfg);

    double serialCycles = 0;
    for (Variant v : {Variant::Serial, Variant::DataParallel,
                      Variant::Pipette}) {
        SpmmWorkload wl(&A, &Bt);
        RunResult r = runner.run(wl, v, "asym", 1);
        if (v == Variant::Serial)
            serialCycles = static_cast<double>(r.cycles);
        std::printf("%-14s %9llu cycles  speedup %5.2fx  %s\n",
                    variantName(v),
                    static_cast<unsigned long long>(r.cycles),
                    serialCycles / static_cast<double>(r.cycles),
                    r.verified ? "verified" : "VERIFY FAILED");
        if (!r.verified)
            return 1;
        if (v == Variant::Pipette) {
            std::printf("\n  pipette control-flow machinery at work:\n");
            std::printf("    control values enqueued: %llu\n",
                        (unsigned long long)r.agg.ctrlValues);
            std::printf("    dequeue-handler dispatches: %llu\n",
                        (unsigned long long)r.agg.cvTraps);
            std::printf("    skip_to_ctrl data discards: %llu\n",
                        (unsigned long long)r.agg.skipDiscards);
            std::printf("    producer enqueue-trap redirects: %llu "
                        "(Fig. 5)\n",
                        (unsigned long long)r.agg.enqTraps);
        }
    }
    return 0;
}
