/**
 * @file
 * BFS end-to-end: runs the paper's flagship workload in all single-core
 * variants on a road-network-like graph, verifies each against the host
 * reference, and prints a small speedup/IPC comparison -- a miniature
 * Fig. 2 driven entirely through the public API.
 *
 * Build: cmake --build build && ./build/examples/bfs_pipeline [vertices]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/runner.h"
#include "workloads/bfs.h"

using namespace pipette;

int
main(int argc, char **argv)
{
    uint32_t dim = 160;
    if (argc > 1)
        dim = static_cast<uint32_t>(std::atoi(argv[1]));

    Graph g = makeGridGraph(dim, dim, 55);
    std::printf("BFS on a %ux%u grid (road proxy): %u vertices, "
                "%u edges\n\n",
                dim, dim, g.numVertices, g.numEdges());

    SystemConfig cfg;
    Runner runner(cfg);

    struct Row
    {
        const char *name;
        Variant v;
        uint32_t cores;
    };
    const Row rows[] = {
        {"serial (1 thread)", Variant::Serial, 1},
        {"data-parallel (4 threads)", Variant::DataParallel, 1},
        {"pipette, no RAs (4 stages)", Variant::PipetteNoRa, 1},
        {"pipette (2 threads + 3 RAs)", Variant::Pipette, 1},
        {"streaming multicore (4 cores)", Variant::Streaming, 4},
    };

    double serialCycles = 0;
    for (const Row &row : rows) {
        BfsWorkload wl(&g);
        RunResult r = runner.run(wl, row.v, "grid", row.cores);
        if (row.v == Variant::Serial)
            serialCycles = static_cast<double>(r.cycles);
        std::printf("%-30s %9llu cycles  speedup %5.2fx  ipc %4.2f  "
                    "queue-stall %2.0f%%  %s\n",
                    row.name, static_cast<unsigned long long>(r.cycles),
                    serialCycles / static_cast<double>(r.cycles), r.ipc,
                    100 * r.cpiFrac[static_cast<size_t>(
                              CpiBucket::Queue)],
                    r.verified ? "verified" : "VERIFY FAILED");
        if (!r.verified)
            return 1;
    }
    std::printf("\nThe Pipette version splits BFS across each "
                "long-latency indirection (paper Fig. 1(d)): fringe -> "
                "offsets (RA pair) -> neighbors (RA scan) -> distances "
                "(RA key/value) -> update.\n");
    return 0;
}
