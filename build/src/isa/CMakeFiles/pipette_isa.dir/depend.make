# Empty dependencies file for pipette_isa.
# This may be replaced when dependencies are built.
