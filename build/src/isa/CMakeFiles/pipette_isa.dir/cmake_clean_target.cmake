file(REMOVE_RECURSE
  "libpipette_isa.a"
)
