file(REMOVE_RECURSE
  "CMakeFiles/pipette_isa.dir/assembler.cpp.o"
  "CMakeFiles/pipette_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/pipette_isa.dir/interp.cpp.o"
  "CMakeFiles/pipette_isa.dir/interp.cpp.o.d"
  "CMakeFiles/pipette_isa.dir/opcodes.cpp.o"
  "CMakeFiles/pipette_isa.dir/opcodes.cpp.o.d"
  "libpipette_isa.a"
  "libpipette_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipette_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
