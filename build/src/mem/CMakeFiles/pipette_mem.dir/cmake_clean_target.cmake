file(REMOVE_RECURSE
  "libpipette_mem.a"
)
