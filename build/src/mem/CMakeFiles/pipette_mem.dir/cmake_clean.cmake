file(REMOVE_RECURSE
  "CMakeFiles/pipette_mem.dir/cache.cpp.o"
  "CMakeFiles/pipette_mem.dir/cache.cpp.o.d"
  "CMakeFiles/pipette_mem.dir/hierarchy.cpp.o"
  "CMakeFiles/pipette_mem.dir/hierarchy.cpp.o.d"
  "libpipette_mem.a"
  "libpipette_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipette_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
