# Empty compiler generated dependencies file for pipette_mem.
# This may be replaced when dependencies are built.
