
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipette/connector.cpp" "src/pipette/CMakeFiles/pipette_rt.dir/connector.cpp.o" "gcc" "src/pipette/CMakeFiles/pipette_rt.dir/connector.cpp.o.d"
  "/root/repo/src/pipette/qrm.cpp" "src/pipette/CMakeFiles/pipette_rt.dir/qrm.cpp.o" "gcc" "src/pipette/CMakeFiles/pipette_rt.dir/qrm.cpp.o.d"
  "/root/repo/src/pipette/ra.cpp" "src/pipette/CMakeFiles/pipette_rt.dir/ra.cpp.o" "gcc" "src/pipette/CMakeFiles/pipette_rt.dir/ra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pipette_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pipette_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pipette_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
