file(REMOVE_RECURSE
  "CMakeFiles/pipette_rt.dir/connector.cpp.o"
  "CMakeFiles/pipette_rt.dir/connector.cpp.o.d"
  "CMakeFiles/pipette_rt.dir/qrm.cpp.o"
  "CMakeFiles/pipette_rt.dir/qrm.cpp.o.d"
  "CMakeFiles/pipette_rt.dir/ra.cpp.o"
  "CMakeFiles/pipette_rt.dir/ra.cpp.o.d"
  "libpipette_rt.a"
  "libpipette_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipette_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
