file(REMOVE_RECURSE
  "libpipette_rt.a"
)
