# Empty dependencies file for pipette_rt.
# This may be replaced when dependencies are built.
