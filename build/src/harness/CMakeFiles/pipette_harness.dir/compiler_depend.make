# Empty compiler generated dependencies file for pipette_harness.
# This may be replaced when dependencies are built.
