file(REMOVE_RECURSE
  "CMakeFiles/pipette_harness.dir/energy.cpp.o"
  "CMakeFiles/pipette_harness.dir/energy.cpp.o.d"
  "CMakeFiles/pipette_harness.dir/report.cpp.o"
  "CMakeFiles/pipette_harness.dir/report.cpp.o.d"
  "CMakeFiles/pipette_harness.dir/runner.cpp.o"
  "CMakeFiles/pipette_harness.dir/runner.cpp.o.d"
  "libpipette_harness.a"
  "libpipette_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipette_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
