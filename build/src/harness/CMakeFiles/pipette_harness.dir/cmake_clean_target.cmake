file(REMOVE_RECURSE
  "libpipette_harness.a"
)
