file(REMOVE_RECURSE
  "CMakeFiles/pipette_core.dir/bpred.cpp.o"
  "CMakeFiles/pipette_core.dir/bpred.cpp.o.d"
  "CMakeFiles/pipette_core.dir/core.cpp.o"
  "CMakeFiles/pipette_core.dir/core.cpp.o.d"
  "CMakeFiles/pipette_core.dir/system.cpp.o"
  "CMakeFiles/pipette_core.dir/system.cpp.o.d"
  "libpipette_core.a"
  "libpipette_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipette_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
