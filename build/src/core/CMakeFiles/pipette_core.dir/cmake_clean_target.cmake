file(REMOVE_RECURSE
  "libpipette_core.a"
)
