
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bpred.cpp" "src/core/CMakeFiles/pipette_core.dir/bpred.cpp.o" "gcc" "src/core/CMakeFiles/pipette_core.dir/bpred.cpp.o.d"
  "/root/repo/src/core/core.cpp" "src/core/CMakeFiles/pipette_core.dir/core.cpp.o" "gcc" "src/core/CMakeFiles/pipette_core.dir/core.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/pipette_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/pipette_core.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipette/CMakeFiles/pipette_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pipette_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pipette_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pipette_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
