# Empty compiler generated dependencies file for pipette_core.
# This may be replaced when dependencies are built.
