file(REMOVE_RECURSE
  "CMakeFiles/pipette_sim.dir/config.cpp.o"
  "CMakeFiles/pipette_sim.dir/config.cpp.o.d"
  "CMakeFiles/pipette_sim.dir/logging.cpp.o"
  "CMakeFiles/pipette_sim.dir/logging.cpp.o.d"
  "CMakeFiles/pipette_sim.dir/rng.cpp.o"
  "CMakeFiles/pipette_sim.dir/rng.cpp.o.d"
  "CMakeFiles/pipette_sim.dir/stats.cpp.o"
  "CMakeFiles/pipette_sim.dir/stats.cpp.o.d"
  "libpipette_sim.a"
  "libpipette_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipette_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
