# Empty compiler generated dependencies file for pipette_sim.
# This may be replaced when dependencies are built.
