file(REMOVE_RECURSE
  "libpipette_sim.a"
)
