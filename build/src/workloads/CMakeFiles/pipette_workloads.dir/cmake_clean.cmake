file(REMOVE_RECURSE
  "CMakeFiles/pipette_workloads.dir/bfs.cpp.o"
  "CMakeFiles/pipette_workloads.dir/bfs.cpp.o.d"
  "CMakeFiles/pipette_workloads.dir/bfs_multicore.cpp.o"
  "CMakeFiles/pipette_workloads.dir/bfs_multicore.cpp.o.d"
  "CMakeFiles/pipette_workloads.dir/cc.cpp.o"
  "CMakeFiles/pipette_workloads.dir/cc.cpp.o.d"
  "CMakeFiles/pipette_workloads.dir/graph.cpp.o"
  "CMakeFiles/pipette_workloads.dir/graph.cpp.o.d"
  "CMakeFiles/pipette_workloads.dir/matrix.cpp.o"
  "CMakeFiles/pipette_workloads.dir/matrix.cpp.o.d"
  "CMakeFiles/pipette_workloads.dir/prd.cpp.o"
  "CMakeFiles/pipette_workloads.dir/prd.cpp.o.d"
  "CMakeFiles/pipette_workloads.dir/radii.cpp.o"
  "CMakeFiles/pipette_workloads.dir/radii.cpp.o.d"
  "CMakeFiles/pipette_workloads.dir/refimpl.cpp.o"
  "CMakeFiles/pipette_workloads.dir/refimpl.cpp.o.d"
  "CMakeFiles/pipette_workloads.dir/silo.cpp.o"
  "CMakeFiles/pipette_workloads.dir/silo.cpp.o.d"
  "CMakeFiles/pipette_workloads.dir/spmm.cpp.o"
  "CMakeFiles/pipette_workloads.dir/spmm.cpp.o.d"
  "CMakeFiles/pipette_workloads.dir/workload.cpp.o"
  "CMakeFiles/pipette_workloads.dir/workload.cpp.o.d"
  "libpipette_workloads.a"
  "libpipette_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipette_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
