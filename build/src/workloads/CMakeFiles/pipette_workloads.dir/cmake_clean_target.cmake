file(REMOVE_RECURSE
  "libpipette_workloads.a"
)
