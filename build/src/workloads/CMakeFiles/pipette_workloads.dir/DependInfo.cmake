
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bfs.cpp" "src/workloads/CMakeFiles/pipette_workloads.dir/bfs.cpp.o" "gcc" "src/workloads/CMakeFiles/pipette_workloads.dir/bfs.cpp.o.d"
  "/root/repo/src/workloads/bfs_multicore.cpp" "src/workloads/CMakeFiles/pipette_workloads.dir/bfs_multicore.cpp.o" "gcc" "src/workloads/CMakeFiles/pipette_workloads.dir/bfs_multicore.cpp.o.d"
  "/root/repo/src/workloads/cc.cpp" "src/workloads/CMakeFiles/pipette_workloads.dir/cc.cpp.o" "gcc" "src/workloads/CMakeFiles/pipette_workloads.dir/cc.cpp.o.d"
  "/root/repo/src/workloads/graph.cpp" "src/workloads/CMakeFiles/pipette_workloads.dir/graph.cpp.o" "gcc" "src/workloads/CMakeFiles/pipette_workloads.dir/graph.cpp.o.d"
  "/root/repo/src/workloads/matrix.cpp" "src/workloads/CMakeFiles/pipette_workloads.dir/matrix.cpp.o" "gcc" "src/workloads/CMakeFiles/pipette_workloads.dir/matrix.cpp.o.d"
  "/root/repo/src/workloads/prd.cpp" "src/workloads/CMakeFiles/pipette_workloads.dir/prd.cpp.o" "gcc" "src/workloads/CMakeFiles/pipette_workloads.dir/prd.cpp.o.d"
  "/root/repo/src/workloads/radii.cpp" "src/workloads/CMakeFiles/pipette_workloads.dir/radii.cpp.o" "gcc" "src/workloads/CMakeFiles/pipette_workloads.dir/radii.cpp.o.d"
  "/root/repo/src/workloads/refimpl.cpp" "src/workloads/CMakeFiles/pipette_workloads.dir/refimpl.cpp.o" "gcc" "src/workloads/CMakeFiles/pipette_workloads.dir/refimpl.cpp.o.d"
  "/root/repo/src/workloads/silo.cpp" "src/workloads/CMakeFiles/pipette_workloads.dir/silo.cpp.o" "gcc" "src/workloads/CMakeFiles/pipette_workloads.dir/silo.cpp.o.d"
  "/root/repo/src/workloads/spmm.cpp" "src/workloads/CMakeFiles/pipette_workloads.dir/spmm.cpp.o" "gcc" "src/workloads/CMakeFiles/pipette_workloads.dir/spmm.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/pipette_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/pipette_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pipette_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pipette/CMakeFiles/pipette_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pipette_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pipette_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pipette_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
