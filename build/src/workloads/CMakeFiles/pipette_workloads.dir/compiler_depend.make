# Empty compiler generated dependencies file for pipette_workloads.
# This may be replaced when dependencies are built.
