# Empty dependencies file for bench_fig17_multicore.
# This may be replaced when dependencies are built.
