file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_multicore.dir/bench_fig17_multicore.cpp.o"
  "CMakeFiles/bench_fig17_multicore.dir/bench_fig17_multicore.cpp.o.d"
  "bench_fig17_multicore"
  "bench_fig17_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
