# Empty dependencies file for bench_fig02_bfs_overview.
# This may be replaced when dependencies are built.
