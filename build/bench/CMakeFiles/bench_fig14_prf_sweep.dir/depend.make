# Empty dependencies file for bench_fig14_prf_sweep.
# This may be replaced when dependencies are built.
