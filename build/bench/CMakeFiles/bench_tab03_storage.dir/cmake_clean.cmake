file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_storage.dir/bench_tab03_storage.cpp.o"
  "CMakeFiles/bench_tab03_storage.dir/bench_tab03_storage.cpp.o.d"
  "bench_tab03_storage"
  "bench_tab03_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
