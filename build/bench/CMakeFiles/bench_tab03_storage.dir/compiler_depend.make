# Empty compiler generated dependencies file for bench_tab03_storage.
# This may be replaced when dependencies are built.
