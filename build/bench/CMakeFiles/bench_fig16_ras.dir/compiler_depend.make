# Empty compiler generated dependencies file for bench_fig16_ras.
# This may be replaced when dependencies are built.
