file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_ras.dir/bench_fig16_ras.cpp.o"
  "CMakeFiles/bench_fig16_ras.dir/bench_fig16_ras.cpp.o.d"
  "bench_fig16_ras"
  "bench_fig16_ras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_ras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
