# Empty dependencies file for bench_fig13_per_input.
# This may be replaced when dependencies are built.
