file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_per_input.dir/bench_fig13_per_input.cpp.o"
  "CMakeFiles/bench_fig13_per_input.dir/bench_fig13_per_input.cpp.o.d"
  "bench_fig13_per_input"
  "bench_fig13_per_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_per_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
