file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cpi_stacks.dir/bench_fig11_cpi_stacks.cpp.o"
  "CMakeFiles/bench_fig11_cpi_stacks.dir/bench_fig11_cpi_stacks.cpp.o.d"
  "bench_fig11_cpi_stacks"
  "bench_fig11_cpi_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cpi_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
