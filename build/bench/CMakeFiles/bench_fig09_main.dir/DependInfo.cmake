
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig09_main.cpp" "bench/CMakeFiles/bench_fig09_main.dir/bench_fig09_main.cpp.o" "gcc" "bench/CMakeFiles/bench_fig09_main.dir/bench_fig09_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/pipette_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pipette_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pipette_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pipette/CMakeFiles/pipette_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pipette_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pipette_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pipette_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
