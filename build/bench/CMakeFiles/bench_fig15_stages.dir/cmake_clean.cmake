file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_stages.dir/bench_fig15_stages.cpp.o"
  "CMakeFiles/bench_fig15_stages.dir/bench_fig15_stages.cpp.o.d"
  "bench_fig15_stages"
  "bench_fig15_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
