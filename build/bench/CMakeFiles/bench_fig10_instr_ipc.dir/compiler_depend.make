# Empty compiler generated dependencies file for bench_fig10_instr_ipc.
# This may be replaced when dependencies are built.
