file(REMOVE_RECURSE
  "CMakeFiles/bench_tab05_06_inputs.dir/bench_tab05_06_inputs.cpp.o"
  "CMakeFiles/bench_tab05_06_inputs.dir/bench_tab05_06_inputs.cpp.o.d"
  "bench_tab05_06_inputs"
  "bench_tab05_06_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab05_06_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
