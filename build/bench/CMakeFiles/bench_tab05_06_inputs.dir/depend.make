# Empty dependencies file for bench_tab05_06_inputs.
# This may be replaced when dependencies are built.
