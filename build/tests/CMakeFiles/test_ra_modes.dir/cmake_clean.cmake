file(REMOVE_RECURSE
  "CMakeFiles/test_ra_modes.dir/test_ra_modes.cpp.o"
  "CMakeFiles/test_ra_modes.dir/test_ra_modes.cpp.o.d"
  "test_ra_modes"
  "test_ra_modes.pdb"
  "test_ra_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ra_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
