file(REMOVE_RECURSE
  "CMakeFiles/test_core_fence.dir/test_core_fence.cpp.o"
  "CMakeFiles/test_core_fence.dir/test_core_fence.cpp.o.d"
  "test_core_fence"
  "test_core_fence.pdb"
  "test_core_fence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_fence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
