# Empty dependencies file for test_interp_queues.
# This may be replaced when dependencies are built.
