file(REMOVE_RECURSE
  "CMakeFiles/test_interp_queues.dir/test_interp_queues.cpp.o"
  "CMakeFiles/test_interp_queues.dir/test_interp_queues.cpp.o.d"
  "test_interp_queues"
  "test_interp_queues.pdb"
  "test_interp_queues[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
