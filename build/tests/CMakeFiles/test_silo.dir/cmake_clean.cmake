file(REMOVE_RECURSE
  "CMakeFiles/test_silo.dir/test_silo.cpp.o"
  "CMakeFiles/test_silo.dir/test_silo.cpp.o.d"
  "test_silo"
  "test_silo.pdb"
  "test_silo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_silo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
