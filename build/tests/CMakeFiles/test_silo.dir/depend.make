# Empty dependencies file for test_silo.
# This may be replaced when dependencies are built.
