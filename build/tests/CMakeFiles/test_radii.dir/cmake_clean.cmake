file(REMOVE_RECURSE
  "CMakeFiles/test_radii.dir/test_radii.cpp.o"
  "CMakeFiles/test_radii.dir/test_radii.cpp.o.d"
  "test_radii"
  "test_radii.pdb"
  "test_radii[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
