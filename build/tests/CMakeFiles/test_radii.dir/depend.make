# Empty dependencies file for test_radii.
# This may be replaced when dependencies are built.
