# Empty dependencies file for test_cache_props.
# This may be replaced when dependencies are built.
