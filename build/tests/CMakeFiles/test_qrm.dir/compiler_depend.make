# Empty compiler generated dependencies file for test_qrm.
# This may be replaced when dependencies are built.
