file(REMOVE_RECURSE
  "CMakeFiles/test_qrm.dir/test_qrm.cpp.o"
  "CMakeFiles/test_qrm.dir/test_qrm.cpp.o.d"
  "test_qrm"
  "test_qrm.pdb"
  "test_qrm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
