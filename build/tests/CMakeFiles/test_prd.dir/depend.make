# Empty dependencies file for test_prd.
# This may be replaced when dependencies are built.
