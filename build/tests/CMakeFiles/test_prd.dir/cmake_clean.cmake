file(REMOVE_RECURSE
  "CMakeFiles/test_prd.dir/test_prd.cpp.o"
  "CMakeFiles/test_prd.dir/test_prd.cpp.o.d"
  "test_prd"
  "test_prd.pdb"
  "test_prd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
