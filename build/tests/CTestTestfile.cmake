# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_interp_queues[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_qrm[1]_include.cmake")
include("/root/repo/build/tests/test_bfs[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_cc[1]_include.cmake")
include("/root/repo/build/tests/test_radii[1]_include.cmake")
include("/root/repo/build/tests/test_prd[1]_include.cmake")
include("/root/repo/build/tests/test_spmm[1]_include.cmake")
include("/root/repo/build/tests/test_silo[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_bpred[1]_include.cmake")
include("/root/repo/build/tests/test_core_fence[1]_include.cmake")
include("/root/repo/build/tests/test_ra_modes[1]_include.cmake")
include("/root/repo/build/tests/test_random_diff[1]_include.cmake")
include("/root/repo/build/tests/test_regressions[1]_include.cmake")
include("/root/repo/build/tests/test_cache_props[1]_include.cmake")
