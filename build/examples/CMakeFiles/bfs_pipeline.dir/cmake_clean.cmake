file(REMOVE_RECURSE
  "CMakeFiles/bfs_pipeline.dir/bfs_pipeline.cpp.o"
  "CMakeFiles/bfs_pipeline.dir/bfs_pipeline.cpp.o.d"
  "bfs_pipeline"
  "bfs_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
