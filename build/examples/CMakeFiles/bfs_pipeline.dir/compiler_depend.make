# Empty compiler generated dependencies file for bfs_pipeline.
# This may be replaced when dependencies are built.
