# Empty compiler generated dependencies file for spmm_skip.
# This may be replaced when dependencies are built.
