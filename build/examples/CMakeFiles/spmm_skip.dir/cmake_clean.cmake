file(REMOVE_RECURSE
  "CMakeFiles/spmm_skip.dir/spmm_skip.cpp.o"
  "CMakeFiles/spmm_skip.dir/spmm_skip.cpp.o.d"
  "spmm_skip"
  "spmm_skip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmm_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
